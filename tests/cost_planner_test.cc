// Cost-based planner tests: GraphStats sanity, order validity, the
// exactness differential (cost-planned counts == greedy counts == oracle
// on the full pattern suite and on random labeled queries), the
// order-quality property (the DP's chosen order never models worse than
// greedy, and actually executes cheaper on label-skewed fixtures), and
// the PlanCache integration (stats fingerprint keys the entry; observed
// work drift triggers a bounded calibrated replan).

#include "query/cost_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/hybrid_engine.h"
#include "core/matcher.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "query/patterns.h"
#include "query/plan.h"
#include "service/plan_cache.h"
#include "util/prng.h"

namespace tdfs {
namespace {

// A label-skewed fixture: hubbed power-law structure plus Zipf labels, so
// both degree and label selectivity vary wildly across query vertices —
// the regime where order choice matters.
Graph SkewedFixture(uint64_t seed) {
  Graph g = GenerateHubbedPowerLaw(600, 3, /*hubs=*/4, /*hub_degree=*/90,
                                   seed);
  g.AssignZipfLabels(4, /*skew=*/1.6, seed + 1);
  return g;
}

// The labeled half of the suite (P12-P22): label selectivity is what the
// cost planner exploits, and the unlabeled dense patterns are too
// expensive to oracle-check on a hubbed fixture.
std::vector<int> LabeledPatternIndices() {
  std::vector<int> labeled;
  for (int index : AllPatternIndices()) {
    if (Pattern(index).IsLabeled()) {
      labeled.push_back(index);
    }
  }
  return labeled;
}

TEST(GraphStatsTest, ComputesBasicMoments) {
  Graph g = GenerateErdosRenyi(200, 800, 5);
  GraphStats stats = GraphStats::Compute(g);
  EXPECT_EQ(stats.num_vertices, g.NumVertices());
  EXPECT_EQ(stats.num_edges, g.NumEdges());
  EXPECT_EQ(stats.max_degree, g.MaxDegree());
  EXPECT_DOUBLE_EQ(stats.avg_degree, g.AvgDegree());
  EXPECT_TRUE(stats.label_counts.empty());  // unlabeled
  EXPECT_DOUBLE_EQ(stats.LabelFraction(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.LabelAvgDegree(0), g.AvgDegree());
  EXPECT_NE(stats.fingerprint, 0u);
}

TEST(GraphStatsTest, LabelHistogramSumsToVertexCount) {
  Graph g = SkewedFixture(11);
  GraphStats stats = GraphStats::Compute(g);
  ASSERT_EQ(static_cast<int32_t>(stats.label_counts.size()), g.NumLabels());
  int64_t total = 0;
  double frac_total = 0.0;
  for (Label l = 0; l < g.NumLabels(); ++l) {
    total += stats.label_counts[static_cast<size_t>(l)];
    frac_total += stats.LabelFraction(l);
    EXPECT_GE(stats.LabelAvgDegree(l), 0.0);
  }
  EXPECT_EQ(total, g.NumVertices());
  EXPECT_NEAR(frac_total, 1.0, 1e-9);
  // Zipf skew: label 0 strictly dominates the tail label.
  EXPECT_GT(stats.label_counts[0], stats.label_counts[3]);
}

TEST(GraphStatsTest, FingerprintTracksGraphContent) {
  Graph a = GenerateErdosRenyi(150, 600, 7);
  Graph b = GenerateErdosRenyi(150, 600, 8);   // different edges
  Graph c = GenerateErdosRenyi(150, 600, 7);   // identical to a
  const uint64_t fa = GraphStats::Compute(a).fingerprint;
  EXPECT_NE(fa, GraphStats::Compute(b).fingerprint);
  EXPECT_EQ(fa, GraphStats::Compute(c).fingerprint);
  // Relabeling the same structure must change the fingerprint too (the
  // cost model depends on the label histogram).
  c.AssignUniformLabels(4, 99);
  EXPECT_NE(fa, GraphStats::Compute(c).fingerprint);
}

TEST(CostOrderTest, EmitsConnectedPermutationThatCompiles) {
  Graph g = SkewedFixture(21);
  GraphStats stats = GraphStats::Compute(g);
  for (int index : AllPatternIndices()) {
    const QueryGraph q = Pattern(index);
    std::vector<int> order = CostOrder(q, stats);
    ASSERT_EQ(static_cast<int>(order.size()), q.NumVertices())
        << PatternName(index);
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(seen.size()), q.NumVertices())
        << PatternName(index);
    // Every non-root position must touch the prefix (connected prefixes),
    // which is exactly what CompilePlan enforces for forced orders.
    PlanOptions opts;
    opts.forced_order = order;
    EXPECT_TRUE(CompilePlan(q, opts).ok()) << PatternName(index);
  }
}

TEST(CostOrderTest, DpEstimateNeverWorseThanGreedyOrder) {
  // The subset DP is exact over connected orders, so its chosen order's
  // modeled work is <= the greedy order's modeled work by construction.
  Graph g = SkewedFixture(31);
  GraphStats stats = GraphStats::Compute(g);
  for (int index : AllPatternIndices()) {
    const QueryGraph q = Pattern(index);
    Result<MatchPlan> greedy = CompilePlan(q, PlanOptions{});
    ASSERT_TRUE(greedy.ok()) << PatternName(index);
    const double cost_est = EstimateOrderWork(q, CostOrder(q, stats), stats);
    const double greedy_est =
        EstimateOrderWork(q, greedy.value().order, stats);
    EXPECT_LE(cost_est, greedy_est * (1.0 + 1e-9)) << PatternName(index);
  }
}

TEST(CostPlanTest, PlanCarriesBackendsAndEstimate) {
  Graph g = SkewedFixture(41);
  GraphStats stats = GraphStats::Compute(g);
  PlanOptions opts;
  opts.planner = PlannerKind::kCost;
  opts.stats = &stats;
  Result<MatchPlan> plan = CompilePlan(Pattern(14), opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().planned_by, PlannerKind::kCost);
  EXPECT_GT(plan.value().estimated_work, 0.0);
  ASSERT_EQ(plan.value().step_backend.size(), plan.value().order.size());
  // Roots have nothing to intersect: positions 0 and 1 stay kInherit.
  EXPECT_EQ(plan.value().step_backend[0], StepBackend::kInherit);
  EXPECT_EQ(plan.value().step_backend[1], StepBackend::kInherit);
}

// Regression: the calibration clamp used to saturate silently. A
// nonsensical calibration (feedback loop gone wrong, corrupted config)
// must leave an observable trace: the process-wide clamp count and, when
// wired, the planner.calibration_clamped counter.
TEST(CostPlanTest, CalibrationClampIsObservable) {
  Graph g = SkewedFixture(43);
  GraphStats stats = GraphStats::Compute(g);
  obs::MetricsRegistry metrics;
  obs::Counter* clamped = metrics.GetCounter("planner.calibration_clamped");
  PlanOptions opts;
  opts.planner = PlannerKind::kCost;
  opts.stats = &stats;
  opts.clamp_counter = clamped;

  // In-range calibration: no clamp, no counter movement.
  opts.cost_calibration = 2.0;
  const int64_t before = PlannerCalibrationClampCount();
  ASSERT_TRUE(CompilePlan(Pattern(14), opts).ok());
  EXPECT_EQ(PlannerCalibrationClampCount(), before);
  EXPECT_EQ(clamped->Value(), 0);

  // Saturating calibrations: both sides of the clamp fire the warning.
  opts.cost_calibration = 1e30;
  ASSERT_TRUE(CompilePlan(Pattern(14), opts).ok());
  EXPECT_EQ(PlannerCalibrationClampCount(), before + 1);
  EXPECT_EQ(clamped->Value(), 1);
  opts.cost_calibration = 1e-30;
  ASSERT_TRUE(CompilePlan(Pattern(14), opts).ok());
  EXPECT_EQ(PlannerCalibrationClampCount(), before + 2);
  EXPECT_EQ(clamped->Value(), 2);

  // A null counter is tolerated (standalone runs have no registry).
  opts.clamp_counter = nullptr;
  opts.cost_calibration = 1e30;
  ASSERT_TRUE(CompilePlan(Pattern(14), opts).ok());
  EXPECT_EQ(PlannerCalibrationClampCount(), before + 3);
}

TEST(CostPlanTest, GreedyFallbackWithoutStats) {
  // kCost with no stats degrades to the greedy order (never fails).
  PlanOptions opts;
  opts.planner = PlannerKind::kCost;
  Result<MatchPlan> plan = CompilePlan(Pattern(3), opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().planned_by, PlannerKind::kGreedy);
}

// The exactness contract: cost-planned runs count exactly what greedy
// runs count, on every pattern in the suite, across engines.
TEST(CostPlannerDifferentialTest, PatternSuiteCountsMatchGreedyAndOracle) {
  Graph g = SkewedFixture(51);
  for (int index : LabeledPatternIndices()) {
    const QueryGraph q = Pattern(index);
    EngineConfig greedy_cfg = TdfsConfig();
    greedy_cfg.num_warps = 4;
    EngineConfig cost_cfg = greedy_cfg;
    cost_cfg.planner = PlannerKind::kCost;

    RunResult oracle = RunMatchingRef(g, q, greedy_cfg);
    ASSERT_TRUE(oracle.status.ok()) << PatternName(index);
    RunResult greedy = RunMatching(g, q, greedy_cfg);
    ASSERT_TRUE(greedy.status.ok()) << PatternName(index);
    RunResult cost = RunMatching(g, q, cost_cfg);
    ASSERT_TRUE(cost.status.ok()) << PatternName(index);

    EXPECT_EQ(greedy.match_count, oracle.match_count) << PatternName(index);
    EXPECT_EQ(cost.match_count, oracle.match_count) << PatternName(index);

    RunResult cost_bfs = RunMatchingBfs(g, q, cost_cfg);
    ASSERT_TRUE(cost_bfs.status.ok()) << PatternName(index);
    EXPECT_EQ(cost_bfs.match_count, oracle.match_count)
        << PatternName(index);

    RunResult cost_hybrid = RunMatchingHybrid(g, q, cost_cfg);
    ASSERT_TRUE(cost_hybrid.status.ok()) << PatternName(index);
    EXPECT_EQ(cost_hybrid.match_count, oracle.match_count)
        << PatternName(index);
  }
}

// The unlabeled half of the suite on a small ER graph (dense unlabeled
// patterns are cheap there): cost-planned counts equal greedy counts.
TEST(CostPlannerDifferentialTest, UnlabeledSuiteCountsMatchGreedy) {
  Graph g = GenerateErdosRenyi(120, 500, 53);
  for (int index : UnlabeledPatternIndices()) {
    const QueryGraph q = Pattern(index);
    EngineConfig greedy_cfg = TdfsConfig();
    greedy_cfg.num_warps = 4;
    EngineConfig cost_cfg = greedy_cfg;
    cost_cfg.planner = PlannerKind::kCost;
    RunResult greedy = RunMatching(g, q, greedy_cfg);
    ASSERT_TRUE(greedy.status.ok()) << PatternName(index);
    RunResult cost = RunMatching(g, q, cost_cfg);
    ASSERT_TRUE(cost.status.ok()) << PatternName(index);
    EXPECT_EQ(cost.match_count, greedy.match_count) << PatternName(index);
  }
}

// Same differential on random connected labeled queries over a skewed
// graph — catches order/backend corner cases the fixed suite misses.
TEST(CostPlannerDifferentialTest, RandomLabeledQueriesMatchGreedy) {
  Graph g = GenerateErdosRenyi(150, 700, 61);
  g.AssignZipfLabels(3, 1.4, 62);
  Xoshiro256ss rng(63);
  for (int trial = 0; trial < 12; ++trial) {
    const int k = 3 + static_cast<int>(rng.Below(3));  // 3..5
    QueryGraph q(k);
    for (int v = 1; v < k; ++v) {
      q.AddEdge(v, static_cast<int>(rng.Below(v)));
    }
    for (int u = 0; u < k; ++u) {
      for (int v = u + 1; v < k; ++v) {
        if (!q.HasEdge(u, v) && rng.Chance(0.4)) {
          q.AddEdge(u, v);
        }
      }
    }
    for (int u = 0; u < k; ++u) {
      q.SetVertexLabel(u, static_cast<Label>(rng.Below(3)));
    }

    EngineConfig greedy_cfg = TdfsConfig();
    greedy_cfg.num_warps = 3;
    EngineConfig cost_cfg = greedy_cfg;
    cost_cfg.planner = PlannerKind::kCost;
    RunResult greedy = RunMatching(g, q, greedy_cfg);
    ASSERT_TRUE(greedy.status.ok()) << q.ToString();
    RunResult cost = RunMatching(g, q, cost_cfg);
    ASSERT_TRUE(cost.status.ok()) << q.ToString();
    EXPECT_EQ(cost.match_count, greedy.match_count) << q.ToString();
  }
}

// Order quality, measured: on the skewed fixture the cost-planned runs
// must not charge more work than greedy in aggregate, and must strictly
// win somewhere (otherwise the planner is dead weight).
TEST(CostPlannerQualityTest, MeasuredWorkNoWorseThanGreedyOnSkewedFixture) {
  Graph g = SkewedFixture(71);
  uint64_t greedy_total = 0;
  uint64_t cost_total = 0;
  bool strict_win = false;
  for (int index : LabeledPatternIndices()) {
    const QueryGraph q = Pattern(index);
    EngineConfig greedy_cfg = TdfsConfig();
    EngineConfig cost_cfg = greedy_cfg;
    cost_cfg.planner = PlannerKind::kCost;
    RunResult greedy = RunMatching(g, q, greedy_cfg);
    ASSERT_TRUE(greedy.status.ok()) << PatternName(index);
    RunResult cost = RunMatching(g, q, cost_cfg);
    ASSERT_TRUE(cost.status.ok()) << PatternName(index);
    ASSERT_EQ(cost.match_count, greedy.match_count) << PatternName(index);
    greedy_total += greedy.counters.work_units;
    cost_total += cost.counters.work_units;
    if (cost.counters.work_units < greedy.counters.work_units) {
      strict_win = true;
    }
  }
  EXPECT_LE(cost_total, greedy_total);
  EXPECT_TRUE(strict_win);
}

TEST(CostPlanCacheTest, StatsFingerprintJoinsTheKey) {
  const QueryGraph q = Pattern(13);
  Graph a = SkewedFixture(81);
  Graph b = SkewedFixture(82);
  GraphStats sa = GraphStats::Compute(a);
  GraphStats sb = GraphStats::Compute(b);
  PlanOptions greedy_opts;
  PlanOptions cost_a;
  cost_a.planner = PlannerKind::kCost;
  cost_a.stats = &sa;
  PlanOptions cost_b = cost_a;
  cost_b.stats = &sb;
  const std::string kg = PlanCacheKey(q, greedy_opts);
  const std::string ka = PlanCacheKey(q, cost_a);
  const std::string kb = PlanCacheKey(q, cost_b);
  EXPECT_NE(kg, ka);  // cost-planned entries never collide with greedy
  EXPECT_NE(ka, kb);  // a different data graph keys a different entry
  // Calibration feedback is deliberately NOT keyed: a replanned entry
  // must overwrite, not shadow, its ancestor.
  PlanOptions cost_a_cal = cost_a;
  cost_a_cal.cost_calibration = 16.0;
  EXPECT_EQ(ka, PlanCacheKey(q, cost_a_cal));
}

TEST(CostPlanCacheTest, WorkDriftTriggersBoundedReplan) {
  const QueryGraph q = Pattern(14);
  Graph g = SkewedFixture(91);
  GraphStats stats = GraphStats::Compute(g);
  PlanOptions opts;
  opts.planner = PlannerKind::kCost;
  opts.stats = &stats;

  PlanCache cache(8);
  auto first = cache.GetWithDemand(q, opts);
  ASSERT_TRUE(first.ok());
  const double initial_estimate = first.value().plan->estimated_work;
  ASSERT_GT(initial_estimate, 0.0);
  EXPECT_EQ(cache.planner_replans(), 0);

  // Report observed work far beyond the drift threshold; the next hit
  // must recompile with the drift folded into the calibration.
  const int64_t observed = static_cast<int64_t>(
      initial_estimate * PlanCache::kReplanDriftRatio * 4.0);
  PlanCache::RecordWork(first.value().observed_work, observed);
  auto second = cache.GetWithDemand(q, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.planner_replans(), 1);
  EXPECT_GT(second.value().plan->estimated_work, initial_estimate);
  EXPECT_EQ(second.value().plan->planned_by, PlannerKind::kCost);

  // The replanned entry starts a fresh work history; without new drift
  // reports, further hits are stable (no replan loop).
  auto third = cache.GetWithDemand(q, opts);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(cache.planner_replans(), 1);
  EXPECT_EQ(third.value().plan.get(), second.value().plan.get());

  // Replans are bounded per entry even under persistent drift reports.
  for (int i = 0; i < 6; ++i) {
    auto info = cache.GetWithDemand(q, opts);
    ASSERT_TRUE(info.ok());
    PlanCache::RecordWork(
        info.value().observed_work,
        static_cast<int64_t>(info.value().plan->estimated_work *
                             PlanCache::kReplanDriftRatio * 4.0));
  }
  auto final_info = cache.GetWithDemand(q, opts);
  ASSERT_TRUE(final_info.ok());
  EXPECT_LE(cache.planner_replans(), PlanCache::kMaxPlannerReplans);
}

// Cost-planned counts must also survive the engines' intersect-mode
// sweep: the per-step backend routing changes wall time only, never the
// counted result or the charged work.
TEST(CostPlannerDifferentialTest, BackendRoutingIsCountInvariant) {
  Graph g = SkewedFixture(101);
  const QueryGraph q = Pattern(16);
  uint64_t baseline_count = 0;
  uint64_t baseline_work = 0;
  bool first = true;
  for (IntersectMode mode :
       {IntersectMode::kAuto, IntersectMode::kScalar, IntersectMode::kSimd,
        IntersectMode::kBitmapOff}) {
    EngineConfig cfg = TdfsConfig();
    cfg.planner = PlannerKind::kCost;
    cfg.intersect = mode;
    RunResult r = RunMatching(g, q, cfg);
    ASSERT_TRUE(r.status.ok()) << IntersectModeName(mode);
    if (first) {
      baseline_count = r.match_count;
      baseline_work = r.counters.work_units;
      first = false;
    } else {
      EXPECT_EQ(r.match_count, baseline_count) << IntersectModeName(mode);
      EXPECT_EQ(r.counters.work_units, baseline_work)
          << IntersectModeName(mode);
    }
  }
}

}  // namespace
}  // namespace tdfs
