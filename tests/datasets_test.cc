#include "graph/datasets.h"

#include <gtest/gtest.h>

namespace tdfs {
namespace {

TEST(DatasetsTest, TwelveDatasetsInTableOrder) {
  EXPECT_EQ(AllDatasets().size(), 12u);
  EXPECT_EQ(ModerateDatasets().size(), 8u);
  EXPECT_EQ(BigDatasets().size(), 4u);
  EXPECT_EQ(AllDatasets().front(), DatasetId::kAmazon);
  EXPECT_EQ(AllDatasets().back(), DatasetId::kFriendster);
}

TEST(DatasetsTest, NamesRoundTrip) {
  for (DatasetId id : AllDatasets()) {
    auto parsed = DatasetFromName(DatasetName(id));
    ASSERT_TRUE(parsed.ok()) << DatasetName(id);
    EXPECT_EQ(parsed.value(), id);
  }
}

TEST(DatasetsTest, UnknownNameRejected) {
  EXPECT_FALSE(DatasetFromName("livejournal").ok());
}

TEST(DatasetsTest, BigDatasetsAreLabeledWithFourLabels) {
  for (DatasetId id : BigDatasets()) {
    EXPECT_TRUE(IsBigDataset(id));
    Graph g = LoadDataset(id);
    EXPECT_TRUE(g.IsLabeled()) << DatasetName(id);
    EXPECT_EQ(g.NumLabels(), 4) << DatasetName(id);
  }
}

TEST(DatasetsTest, ModerateDatasetsAreUnlabeled) {
  for (DatasetId id : ModerateDatasets()) {
    EXPECT_FALSE(IsBigDataset(id));
    Graph g = LoadDataset(id);
    EXPECT_FALSE(g.IsLabeled()) << DatasetName(id);
  }
}

TEST(DatasetsTest, LoadIsDeterministic) {
  Graph a = LoadDataset(DatasetId::kYoutube);
  Graph b = LoadDataset(DatasetId::kYoutube);
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.MaxDegree(), b.MaxDegree());
}

TEST(DatasetsTest, SkewOrderingMatchesPaperNarrative) {
  // The paper singles out YouTube and Pokec as the graphs whose large
  // d_max (relative to average degree) creates stragglers; the analogs
  // must preserve that property.
  Graph youtube = LoadDataset(DatasetId::kYoutube);
  Graph amazon = LoadDataset(DatasetId::kAmazon);
  const double youtube_skew = youtube.MaxDegree() / youtube.AvgDegree();
  const double amazon_skew = amazon.MaxDegree() / amazon.AvgDegree();
  EXPECT_GT(youtube_skew, 3 * amazon_skew);
}

TEST(DatasetsTest, FriendsterIsLargest) {
  Graph friendster = LoadDataset(DatasetId::kFriendster);
  for (DatasetId id : AllDatasets()) {
    if (id == DatasetId::kFriendster) {
      continue;
    }
    Graph g = LoadDataset(id);
    EXPECT_GE(friendster.NumEdges(), g.NumEdges()) << DatasetName(id);
  }
}

TEST(DatasetsTest, AllNonTrivialAndConnectedEnough) {
  for (DatasetId id : AllDatasets()) {
    Graph g = LoadDataset(id);
    EXPECT_GT(g.NumVertices(), 1000) << DatasetName(id);
    EXPECT_GT(g.NumEdges(), g.NumVertices()) << DatasetName(id);
    EXPECT_GT(g.MaxDegree(), 2) << DatasetName(id);
  }
}

}  // namespace
}  // namespace tdfs
