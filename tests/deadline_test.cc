#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"
#include "util/timer.h"

namespace tdfs {
namespace {

// The run-deadline mechanism (the paper's 'T' truncation): jobs past
// max_run_ms must abort with kDeadlineExceeded quickly and never silently
// report a partial count as a success.

Graph HeavyGraph() { return GenerateBarabasiAlbert(20000, 8, 1); }

TEST(DeadlineTest, DfsEngineAborts) {
  Graph g = HeavyGraph();
  EngineConfig config = TdfsConfig();
  config.max_run_ms = 50;
  Timer timer;
  RunResult r = RunMatching(g, Pattern(8), config);  // hexagon: huge job
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  // Must stop reasonably promptly (deadline + probe granularity + teardown).
  EXPECT_LT(timer.ElapsedMillis(), 2000.0);
}

TEST(DeadlineTest, HalfStealAborts) {
  Graph g = HeavyGraph();
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kHalfSteal;
  config.max_run_ms = 50;
  RunResult r = RunMatching(g, Pattern(8), config);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, NewKernelAborts) {
  Graph g = HeavyGraph();
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNewKernel;
  config.newkernel_fanout_threshold = 16;
  config.newkernel_launch_overhead_ns = 0;
  config.max_run_ms = 50;
  Timer timer;
  RunResult r = RunMatching(g, Pattern(8), config);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedMillis(), 3000.0);
}

TEST(DeadlineTest, BfsEngineAborts) {
  Graph g = HeavyGraph();
  EngineConfig config = PbeConfig();
  config.max_run_ms = 50;
  Timer timer;
  RunResult r = RunMatchingBfs(g, Pattern(8), config);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedMillis(), 2000.0);
}

TEST(DeadlineTest, GenerousDeadlineDoesNotTrip) {
  Graph g = GenerateErdosRenyi(100, 400, 2);
  EngineConfig config = TdfsConfig();
  config.max_run_ms = 60'000;
  RunResult r = RunMatching(g, Pattern(2), config);
  EXPECT_TRUE(r.status.ok()) << r.status;
  RunResult oracle = RunMatchingRef(g, Pattern(2), config);
  EXPECT_EQ(r.match_count, oracle.match_count);
}

TEST(DeadlineTest, HostEdgeFilterPreprocessingRespectsDeadline) {
  // Regression: the deadline used to start only at kernel launch, so a
  // slow host-side prefilter could overrun max_run_ms unboundedly.
  Graph g = HeavyGraph();
  EngineConfig config = StmatchConfig();  // host_side_edge_filter = true
  config.max_run_ms = 0.01;  // expired before the filter loop finishes
  Timer timer;
  RunResult r = RunMatching(g, Pattern(8), config);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status.ToString().find("preprocessing"), std::string::npos)
      << r.status;
  EXPECT_LT(timer.ElapsedMillis(), 2000.0);
}

TEST(DeadlineTest, OomModelScanRespectsDeadline) {
  Graph g = HeavyGraph();
  EngineConfig config = EgsmConfig();  // builds the label index
  config.device_memory_budget_bytes = int64_t{1} << 40;  // scan, don't trip
  config.max_run_ms = 0.01;
  Timer timer;
  RunResult r = RunMatching(g, Pattern(8), config);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedMillis(), 2000.0);
}

TEST(DeadlineTest, GenerousDeadlineAllowsPreprocessing) {
  Graph g = GenerateErdosRenyi(100, 400, 2);
  EngineConfig config = StmatchConfig();
  config.max_run_ms = 60'000;
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  RunResult oracle = RunMatchingRef(g, Pattern(2), config);
  EXPECT_EQ(r.match_count, oracle.match_count);
}

TEST(DeadlineTest, ZeroMeansUnlimited) {
  Graph g = GenerateErdosRenyi(80, 250, 3);
  EngineConfig config = TdfsConfig();
  config.max_run_ms = 0.0;
  RunResult r = RunMatching(g, Pattern(3), config);
  EXPECT_TRUE(r.status.ok());
}

}  // namespace
}  // namespace tdfs
