#include "graph/degeneracy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"

namespace tdfs {
namespace {

Graph CompleteGraph(int n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

TEST(DegeneracyTest, CompleteGraph) {
  Graph g = CompleteGraph(6);
  DegeneracyResult d = ComputeDegeneracy(g);
  EXPECT_EQ(d.degeneracy, 5);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(d.core[v], 5);
  }
}

TEST(DegeneracyTest, TreeHasDegeneracyOne) {
  GraphBuilder builder(7);
  for (VertexId v = 1; v < 7; ++v) {
    builder.AddEdge(v, (v - 1) / 2);  // binary tree
  }
  Graph g = builder.Build();
  DegeneracyResult d = ComputeDegeneracy(g);
  EXPECT_EQ(d.degeneracy, 1);
}

TEST(DegeneracyTest, CycleHasDegeneracyTwo) {
  GraphBuilder builder(8);
  for (VertexId v = 0; v < 8; ++v) {
    builder.AddEdge(v, (v + 1) % 8);
  }
  Graph g = builder.Build();
  EXPECT_EQ(ComputeDegeneracy(g).degeneracy, 2);
}

TEST(DegeneracyTest, OrderIsPermutationAndPositionsConsistent) {
  Graph g = GenerateBarabasiAlbert(500, 3, 7);
  DegeneracyResult d = ComputeDegeneracy(g);
  ASSERT_EQ(d.order.size(), 500u);
  std::set<VertexId> seen(d.order.begin(), d.order.end());
  EXPECT_EQ(seen.size(), 500u);
  for (int64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(d.position[d.order[i]], i);
  }
}

TEST(DegeneracyTest, CoreNumberIsValid) {
  // Every vertex must have >= core[v] neighbors with core >= core[v].
  Graph g = GenerateErdosRenyi(300, 1500, 3);
  DegeneracyResult d = ComputeDegeneracy(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    int count = 0;
    for (VertexId w : g.Neighbors(v)) {
      count += d.core[w] >= d.core[v] ? 1 : 0;
    }
    EXPECT_GE(count, d.core[v]) << "vertex " << v;
  }
}

TEST(DegeneracyTest, BAGraphDegeneracyEqualsAttachment) {
  // A BA graph built with m attachments has degeneracy exactly m (the last
  // vertex added always has degree m).
  Graph g = GenerateBarabasiAlbert(400, 4, 5);
  EXPECT_EQ(ComputeDegeneracy(g).degeneracy, 4);
}

TEST(OrientedGraphTest, OutDegreesBoundedByDegeneracy) {
  Graph g = GenerateBarabasiAlbert(400, 3, 9);
  OrientedGraph oriented(g);
  EXPECT_LE(oriented.MaxOutDegree(), oriented.degeneracy());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LE(oriented.OutDegree(v), oriented.degeneracy());
  }
}

TEST(OrientedGraphTest, EveryEdgeOrientedExactlyOnce) {
  Graph g = GenerateErdosRenyi(200, 800, 11);
  OrientedGraph oriented(g);
  int64_t directed = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    VertexSpan out = oriented.OutNeighbors(v);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    for (VertexId w : out) {
      EXPECT_TRUE(g.HasEdge(v, w));
      EXPECT_GT(oriented.OrderPosition(w), oriented.OrderPosition(v));
      ++directed;
    }
  }
  EXPECT_EQ(directed, g.NumEdges());
}

}  // namespace
}  // namespace tdfs
