#include "core/dfs_engine.h"

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/automorphism.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

// The tests in this file target the T-DFS engine specifically (timeout
// strategy, both stack backends, queue edge cases); cross-strategy and
// cross-engine equivalence lives in strategies_test.cc and
// engine_property_test.cc.

uint64_t Oracle(const Graph& g, const QueryGraph& q,
                const EngineConfig& config) {
  RunResult r = RunMatchingRef(g, q, config);
  EXPECT_TRUE(r.status.ok());
  return r.match_count;
}

TEST(TdfsEngineTest, MatchesOracleOnRandomGraph) {
  Graph g = GenerateErdosRenyi(150, 600, 11);
  EngineConfig config = TdfsConfig();
  config.num_warps = 4;
  for (int i : {1, 2, 3, 4, 8}) {
    RunResult r = RunMatching(g, Pattern(i), config);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, Oracle(g, Pattern(i), config))
        << PatternName(i);
  }
}

TEST(TdfsEngineTest, SingleWarpStillCorrect) {
  Graph g = GenerateBarabasiAlbert(120, 3, 2);
  EngineConfig config = TdfsConfig();
  config.num_warps = 1;
  RunResult r = RunMatching(g, Pattern(3), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(3), config));
}

TEST(TdfsEngineTest, EdgePatternCountsEdges) {
  Graph g = GenerateErdosRenyi(80, 200, 5);
  QueryGraph edge(2, {{0, 1}});
  RunResult r = RunMatching(g, edge, TdfsConfig());
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, 200u);
}

TEST(TdfsEngineTest, TrianglePatternOnLabeledGraph) {
  Graph g = GenerateErdosRenyi(150, 900, 8);
  g.AssignUniformLabels(3, 4);
  QueryGraph q(3, {{0, 1}, {1, 2}, {2, 0}});
  q.SetVertexLabel(0, 0);
  q.SetVertexLabel(1, 1);
  q.SetVertexLabel(2, 2);
  EngineConfig config = TdfsConfig();
  RunResult r = RunMatching(g, q, config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, q, config));
  EXPECT_GT(r.match_count, 0u);  // parameters chosen to be non-trivial
}

TEST(TdfsEngineTest, ArrayStackBackendsAgreeWithPaged) {
  Graph g = GenerateBarabasiAlbert(200, 4, 6);
  for (int i : {1, 2, 4}) {
    EngineConfig paged = TdfsConfig();
    EngineConfig array = TdfsConfig();
    array.stack = StackKind::kArrayMaxDegree;
    RunResult rp = RunMatching(g, Pattern(i), paged);
    RunResult ra = RunMatching(g, Pattern(i), array);
    ASSERT_TRUE(rp.status.ok());
    ASSERT_TRUE(ra.status.ok());
    EXPECT_EQ(rp.match_count, ra.match_count) << PatternName(i);
    EXPECT_FALSE(ra.counters.stack_overflow);
  }
}

TEST(TdfsEngineTest, UndersizedFixedStackTruncatesAndReportsOverflow) {
  // The STMatch 4096-capacity pitfall, shrunk: a fixed capacity far below
  // the real candidate set sizes must flag overflow (and the paper shows
  // the resulting counts are wrong).
  Graph g = GenerateBarabasiAlbert(300, 5, 9);
  EngineConfig config = TdfsConfig();
  config.stack = StackKind::kArrayFixed;
  config.fixed_stack_capacity = 4;
  RunResult r = RunMatching(g, Pattern(1), config);
  ASSERT_TRUE(r.status.ok());  // fixed-capacity mode reports, not fails
  EXPECT_TRUE(r.counters.stack_overflow);
  EXPECT_LT(r.match_count, Oracle(g, Pattern(1), config));
}

TEST(TdfsEngineTest, GenerousFixedStackIsCorrect) {
  Graph g = GenerateErdosRenyi(100, 400, 3);
  EngineConfig config = TdfsConfig();
  config.stack = StackKind::kArrayFixed;
  config.fixed_stack_capacity = 4096;
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.counters.stack_overflow);
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(2), config));
}

TEST(TdfsEngineTest, ExhaustedPagePoolFailsLoudly) {
  Graph g = GenerateErdosRenyi(200, 1500, 4);
  EngineConfig config = TdfsConfig();
  config.page_pool_pages = 1;  // nowhere near enough
  config.page_bytes = 64;
  RunResult r = RunMatching(g, Pattern(2), config);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
}

TEST(TdfsEngineTest, TinyVirtualTimeoutForcesDecompositionAndStaysCorrect) {
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 64;  // fire constantly
  config.num_warps = 4;
  for (int i : {1, 3, 8}) {
    RunResult r = RunMatching(g, Pattern(i), config);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, Oracle(g, Pattern(i), config))
        << PatternName(i);
    EXPECT_GT(r.counters.tasks_enqueued, 0) << PatternName(i);
    EXPECT_EQ(r.counters.tasks_enqueued, r.counters.tasks_dequeued)
        << PatternName(i);
  }
}

TEST(TdfsEngineTest, TinyQueueTriggersFullPathAndStaysCorrect) {
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 64;
  config.queue_capacity_ints = 6;  // 2 tasks: constant full-queue rejections
  config.num_warps = 4;
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(8), config));
  EXPECT_GT(r.counters.queue_full_failures, 0);
}

TEST(TdfsEngineTest, StopLevelTwoOnlyMakesEdgeTasks) {
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 64;
  config.stop_level = 2;
  RunResult r = RunMatching(g, Pattern(3), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(3), config));
}

TEST(TdfsEngineTest, ReuseOnAndOffAgree) {
  Graph g = GenerateErdosRenyi(150, 700, 13);
  for (int i : {2, 6, 7, 10}) {  // dense patterns where reuse kicks in
    EngineConfig with = TdfsConfig();
    EngineConfig without = TdfsConfig();
    without.use_reuse = false;
    RunResult rw = RunMatching(g, Pattern(i), with);
    RunResult ro = RunMatching(g, Pattern(i), without);
    ASSERT_TRUE(rw.status.ok());
    ASSERT_TRUE(ro.status.ok());
    EXPECT_EQ(rw.match_count, ro.match_count) << PatternName(i);
  }
}

TEST(TdfsEngineTest, ReuseReducesIntersectionWork) {
  Graph g = GenerateErdosRenyi(400, 4000, 14);
  EngineConfig with = TdfsConfig();
  EngineConfig without = TdfsConfig();
  without.use_reuse = false;
  // 5-clique: every level >= 3 reuses the previous level's candidates.
  RunResult rw = RunMatching(g, Pattern(7), with);
  RunResult ro = RunMatching(g, Pattern(7), without);
  ASSERT_TRUE(rw.status.ok());
  ASSERT_TRUE(ro.status.ok());
  ASSERT_EQ(rw.match_count, ro.match_count);
  EXPECT_LT(rw.counters.work_units, ro.counters.work_units);
}

TEST(TdfsEngineTest, PageReleasingStaysCorrect) {
  Graph g = GenerateBarabasiAlbert(250, 4, 15);
  EngineConfig config = TdfsConfig();
  config.release_stack_pages = true;
  config.page_bytes = 64;  // small pages so the heuristic actually fires
  config.page_pool_pages = 65536;
  RunResult r = RunMatching(g, Pattern(3), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(3), config));
}

TEST(TdfsEngineTest, DegreeFilterOffStillCorrect) {
  Graph g = GenerateBarabasiAlbert(150, 3, 3);
  EngineConfig config = TdfsConfig();
  config.use_degree_filter = false;
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(2), config));
}

TEST(TdfsEngineTest, NoSymmetryBreakingMultipliesCounts) {
  Graph g = GenerateErdosRenyi(100, 400, 17);
  EngineConfig sym = TdfsConfig();
  EngineConfig nosym = TdfsConfig();
  nosym.use_symmetry_breaking = false;
  for (int i : {1, 2, 4}) {
    RunResult rs = RunMatching(g, Pattern(i), sym);
    RunResult rn = RunMatching(g, Pattern(i), nosym);
    ASSERT_TRUE(rs.status.ok());
    ASSERT_TRUE(rn.status.ok());
    EXPECT_EQ(rn.match_count,
              rs.match_count * AutomorphismCount(Pattern(i)))
        << PatternName(i);
  }
}

TEST(TdfsEngineTest, CountersReportInitialTasksAndEdges) {
  Graph g = GenerateErdosRenyi(100, 300, 19);
  RunResult r = RunMatching(g, Pattern(2), TdfsConfig());
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.counters.edges_scanned, g.NumDirectedEdges());
  EXPECT_GT(r.counters.initial_tasks, 0);
  EXPECT_LE(r.counters.initial_tasks, r.counters.edges_scanned);
  EXPECT_GT(r.counters.work_units, 0u);
}

TEST(TdfsEngineTest, PagedStackReportsPagePeak) {
  Graph g = GenerateBarabasiAlbert(200, 4, 21);
  RunResult r = RunMatching(g, Pattern(2), TdfsConfig());
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.counters.pages_peak, 0);
  EXPECT_GT(r.counters.stack_bytes_peak, 0);
}

TEST(TdfsEngineTest, HostSideEdgeFilterMatchesWarpSideFilter) {
  Graph g = GenerateBarabasiAlbert(150, 3, 23);
  EngineConfig warp_side = TdfsConfig();
  EngineConfig host_side = TdfsConfig();
  host_side.host_side_edge_filter = true;
  RunResult rw = RunMatching(g, Pattern(3), warp_side);
  RunResult rh = RunMatching(g, Pattern(3), host_side);
  ASSERT_TRUE(rw.status.ok());
  ASSERT_TRUE(rh.status.ok());
  EXPECT_EQ(rw.match_count, rh.match_count);
}

TEST(TdfsEngineTest, SeparateVertexRemovalMatches) {
  Graph g = GenerateErdosRenyi(120, 500, 29);
  EngineConfig config = TdfsConfig();
  config.separate_vertex_removal = true;
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(2), TdfsConfig()));
}

TEST(TdfsEngineTest, DisconnectedQueryRejected) {
  Graph g = GenerateErdosRenyi(50, 100, 1);
  QueryGraph q(4, {{0, 1}, {2, 3}});
  RunResult r = RunMatching(g, q, TdfsConfig());
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tdfs
