#include "service/engine_arena.h"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

EngineConfig SmallConfig() {
  EngineConfig config = TdfsConfig();
  config.num_warps = 4;
  config.page_pool_pages = 256;
  config.page_bytes = 1024;
  config.queue_capacity_ints = 3 * 1024;
  return config;
}

// The tentpole correctness claim: running through borrowed arena
// resources must leave match counts bit-identical to cold runs, run
// after run on the same slot.
TEST(EngineArenaTest, WarmRunsMatchColdRunsExactly) {
  Graph g = GenerateBarabasiAlbert(500, 4, 12);
  EngineConfig config = SmallConfig();
  std::vector<uint64_t> cold_counts;
  for (int pattern : {1, 2, 5}) {
    RunResult r = RunMatching(g, Pattern(pattern), config);
    ASSERT_TRUE(r.status.ok()) << r.status;
    cold_counts.push_back(r.match_count);
  }

  EngineArena arena(1, ArenaOptions::FromConfig(config));
  EngineConfig warm = config;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < 3; ++i) {
      const int pattern = i == 0 ? 1 : (i == 1 ? 2 : 5);
      EngineArena::Lease lease = arena.Acquire();
      warm.resources = lease.resources();
      RunResult r = RunMatching(g, Pattern(pattern), warm);
      ASSERT_TRUE(r.status.ok()) << r.status;
      EXPECT_EQ(r.match_count, cold_counts[i])
          << "pattern " << pattern << " round " << round;
    }
  }
  EXPECT_EQ(arena.total_acquires(), 9);
  EXPECT_EQ(arena.slots_rebuilt(), 0);
}

TEST(EngineArenaTest, AdoptedStatsResetBetweenRuns) {
  // Per-run peak counters must not leak from an earlier, heavier run into
  // a later, lighter one on the same slot. The exact peak is
  // timing-dependent (it counts warps concurrently holding pages), so the
  // leak detector is an inequality: without the reset at adoption the
  // light run would report at least the heavy run's peak.
  Graph g = GenerateBarabasiAlbert(500, 4, 12);
  EngineConfig config = SmallConfig();
  EngineArena arena(1, ArenaOptions::FromConfig(config));

  RunResult cold_light = RunMatching(g, Pattern(1), config);
  ASSERT_TRUE(cold_light.status.ok()) << cold_light.status;

  EngineConfig warm = config;
  uint64_t heavy_pages = 0;
  {
    EngineArena::Lease lease = arena.Acquire();
    warm.resources = lease.resources();
    RunResult r = RunMatching(g, Pattern(8), warm);  // heavier pattern
    ASSERT_TRUE(r.status.ok()) << r.status;
    heavy_pages = r.counters.pages_peak;
  }
  ASSERT_GT(heavy_pages, cold_light.counters.pages_peak)
      << "workload mix no longer separates heavy from light";
  {
    EngineArena::Lease lease = arena.Acquire();
    warm.resources = lease.resources();
    RunResult light = RunMatching(g, Pattern(1), warm);
    ASSERT_TRUE(light.status.ok()) << light.status;
    EXPECT_LT(light.counters.pages_peak, heavy_pages)
        << "peak stat leaked from the previous run";
  }
}

TEST(EngineArenaTest, GeometryMismatchFallsBackToFreshAllocation) {
  Graph g = GenerateBarabasiAlbert(500, 4, 12);
  EngineConfig config = SmallConfig();
  const uint64_t expected = [&] {
    RunResult r = RunMatching(g, Pattern(2), config);
    EXPECT_TRUE(r.status.ok());
    return r.match_count;
  }();

  // Arena sized for a DIFFERENT geometry: the engine must ignore the
  // borrowed resources and still count exactly.
  ArenaOptions options = ArenaOptions::FromConfig(config);
  options.page_pool_pages = config.page_pool_pages * 2;
  options.queue_capacity_ints = config.queue_capacity_ints * 2;
  EngineArena arena(1, options);
  EngineArena::Lease lease = arena.Acquire();
  EngineConfig warm = config;
  warm.resources = lease.resources();
  RunResult r = RunMatching(g, Pattern(2), warm);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
}

TEST(EngineArenaTest, ReleaseScrubsLeftoverQueueTasks) {
  EngineConfig config = SmallConfig();
  EngineArena arena(1, ArenaOptions::FromConfig(config));
  {
    EngineArena::Lease lease = arena.Acquire();
    // Simulate a deadline-aborted run that left tasks behind.
    TaskQueue* q = lease.resources()->queue;
    ASSERT_NE(q, nullptr);
    for (VertexId i = 0; i < 5; ++i) {
      ASSERT_TRUE(q->Enqueue(Task{i, i, i}));
    }
  }
  EXPECT_EQ(arena.tasks_scrubbed(), 5);
  // The next borrower sees an empty queue.
  EngineArena::Lease lease = arena.Acquire();
  Task t;
  EXPECT_FALSE(lease.resources()->queue->Dequeue(&t));
}

TEST(EngineArenaTest, ScrubRewindsQueueTicketsToOrigin) {
  EngineConfig config = SmallConfig();
  EngineArena arena(1, ArenaOptions::FromConfig(config));
  {
    EngineArena::Lease lease = arena.Acquire();
    TaskQueue* q = lease.resources()->queue;
    ASSERT_NE(q, nullptr);
    // Leave the tickets mid-ring: traffic plus a leftover task.
    for (VertexId i = 0; i < 6; ++i) {
      ASSERT_TRUE(q->Enqueue(Task{i, i, i}));
    }
    Task t;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q->Dequeue(&t));
    }
  }
  // Release scrubbed the leftover task AND rewound the ring, so the next
  // borrower's traffic lands on the same slots as a cold queue's —
  // warm-run traces stay slot-comparable to cold runs.
  EXPECT_EQ(arena.tasks_scrubbed(), 1);
  EngineArena::Lease lease = arena.Acquire();
  TaskQueue* q = lease.resources()->queue;
  EXPECT_EQ(q->FrontTicket(), 0);
  EXPECT_EQ(q->BackTicket(), 0);
  EXPECT_EQ(q->ApproxSize(), 0);
}

TEST(EngineArenaTest, AdoptionRejectsLeakedPagesLoudly) {
  Graph g = GenerateBarabasiAlbert(200, 4, 12);
  EngineConfig config = SmallConfig();
  EngineArena arena(1, ArenaOptions::FromConfig(config));
  EngineArena::Lease lease = arena.Acquire();
  PageAllocator* allocator = lease.resources()->allocator;
  ASSERT_NE(allocator, nullptr);
  // Simulate a leaky previous borrower: a page is still out when the next
  // run tries to adopt. ResetStats used to silently rebaseline the peak to
  // this leak; the engine must instead refuse the resources.
  const PageId leaked = allocator->AllocPage();
  ASSERT_NE(leaked, kNullPage);
  EngineConfig warm = config;
  warm.resources = lease.resources();
  RunResult r = RunMatching(g, Pattern(1), warm);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition) << r.status;
  EXPECT_EQ(r.counters.adoption_rejects, 1);
  // With the leak repaired the same lease works again.
  allocator->FreePage(leaked);
  RunResult ok = RunMatching(g, Pattern(1), warm);
  EXPECT_TRUE(ok.status.ok()) << ok.status;
}

TEST(EngineArenaTest, AcquireBlocksUntilSlotFrees) {
  EngineConfig config = SmallConfig();
  EngineArena arena(1, ArenaOptions::FromConfig(config));
  std::optional<EngineArena::Lease> held = arena.Acquire();
  EXPECT_FALSE(arena.TryAcquire().has_value());
  std::thread releaser([&held] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    held.reset();
  });
  EngineArena::Lease second = arena.Acquire();  // blocks until reset
  EXPECT_TRUE(static_cast<bool>(second));
  releaser.join();
  EXPECT_EQ(arena.total_acquires(), 2);
}

TEST(EngineArenaTest, UnpooledResourcesHandOutNull) {
  EngineConfig config = SmallConfig();
  config.stack = StackKind::kArrayMaxDegree;  // no page pool needed
  config.steal = StealStrategy::kNone;        // no queue needed
  ArenaOptions options = ArenaOptions::FromConfig(config);
  EXPECT_FALSE(options.pool_allocator);
  EXPECT_FALSE(options.pool_queue);
  EngineArena arena(1, options);
  EngineArena::Lease lease = arena.Acquire();
  EXPECT_EQ(lease.resources()->allocator, nullptr);
  EXPECT_EQ(lease.resources()->queue, nullptr);
}

TEST(EngineArenaTest, MetricsMirrorCounters) {
  obs::MetricsRegistry metrics;
  EngineConfig config = SmallConfig();
  EngineArena arena(2, ArenaOptions::FromConfig(config));
  arena.AttachMetrics(&metrics);
  { EngineArena::Lease lease = arena.Acquire(); }
  { EngineArena::Lease lease = arena.Acquire(); }
  EXPECT_EQ(metrics.GetCounter("service.arena_acquires")->Value(), 2);
}

}  // namespace
}  // namespace tdfs
