// The cross-engine equivalence sweep: every engine configuration must
// produce the oracle's match count on every pattern over a set of graphs
// with different shapes. This is the repository's strongest correctness
// property — any divergence in candidate computation, symmetry breaking,
// stealing, decomposition, paging, or batching shows up here.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

struct GraphCase {
  const char* name;
  Graph (*make)();
};

Graph SmallErdosRenyi() { return GenerateErdosRenyi(120, 480, 1001); }
Graph SmallPowerLaw() { return GenerateBarabasiAlbert(150, 3, 1002); }
Graph SmallRmat() { return GenerateRmat(128, 500, 0.6, 0.15, 0.15, 1003); }
Graph SmallCommunities() {
  return GeneratePlantedPartition(120, 6, 0.4, 0.01, 1004);
}
Graph SmallLabeled() {
  Graph g = GenerateErdosRenyi(120, 600, 1005);
  g.AssignUniformLabels(4, 1006);
  return g;
}

struct EngineCase {
  const char* name;
  bool bfs;
  EngineConfig (*make)();
};

EngineConfig CfgTdfsPaged() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  return c;
}
EngineConfig CfgTdfsArray() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.stack = StackKind::kArrayMaxDegree;
  return c;
}
EngineConfig CfgTdfsTinyTimeout() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.clock = ClockKind::kVirtual;
  c.timeout_work_units = 96;
  return c;
}
EngineConfig CfgNoSteal() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.steal = StealStrategy::kNone;
  return c;
}
EngineConfig CfgHalfSteal() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.steal = StealStrategy::kHalfSteal;
  c.chunk_size = 64;
  return c;
}
EngineConfig CfgNewKernel() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.steal = StealStrategy::kNewKernel;
  c.newkernel_fanout_threshold = 8;
  c.newkernel_child_warps = 2;
  c.newkernel_launch_overhead_ns = 0;
  return c;
}
EngineConfig CfgStmatchLike() {
  EngineConfig c = StmatchConfig();
  c.num_warps = 3;
  return c;
}
EngineConfig CfgTwoDevices() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 2;
  c.num_devices = 2;
  return c;
}
EngineConfig CfgBfs() {
  EngineConfig c = PbeConfig();
  c.num_warps = 3;
  c.bfs_memory_budget_bytes = 1 << 16;  // force batching too
  return c;
}

using SweepParam = std::tuple<GraphCase, EngineCase, int>;

class EngineEquivalenceTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineEquivalenceTest, CountEqualsOracle) {
  const auto& [graph_case, engine_case, pattern_index] = GetParam();
  Graph g = graph_case.make();
  QueryGraph q = Pattern(pattern_index);
  if (g.IsLabeled() != q.IsLabeled() && q.IsLabeled()) {
    GTEST_SKIP() << "labeled query on unlabeled graph has no matches";
  }
  EngineConfig config = engine_case.make();
  RunResult oracle = RunMatchingRef(g, q, config);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status;
  RunResult r = engine_case.bfs ? RunMatchingBfs(g, q, config)
                                : RunMatching(g, q, config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, oracle.match_count)
      << graph_case.name << " / " << engine_case.name << " / "
      << PatternName(pattern_index);
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& [graph_case, engine_case, pattern_index] = info.param;
  return std::string(graph_case.name) + "_" + engine_case.name + "_" +
         PatternName(pattern_index);
}

INSTANTIATE_TEST_SUITE_P(
    UnlabeledSweep, EngineEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(GraphCase{"er", SmallErdosRenyi},
                          GraphCase{"ba", SmallPowerLaw},
                          GraphCase{"rmat", SmallRmat}),
        ::testing::Values(
            EngineCase{"tdfs_paged", false, CfgTdfsPaged},
            EngineCase{"tdfs_array", false, CfgTdfsArray},
            EngineCase{"tdfs_split", false, CfgTdfsTinyTimeout},
            EngineCase{"nosteal", false, CfgNoSteal},
            EngineCase{"halfsteal", false, CfgHalfSteal},
            EngineCase{"newkernel", false, CfgNewKernel},
            EngineCase{"stmatch", false, CfgStmatchLike},
            EngineCase{"twodev", false, CfgTwoDevices},
            EngineCase{"bfs", true, CfgBfs}),
        ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)),
    SweepName);

INSTANTIATE_TEST_SUITE_P(
    CommunitySweep, EngineEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(GraphCase{"pp", SmallCommunities}),
        ::testing::Values(EngineCase{"tdfs_paged", false, CfgTdfsPaged},
                          EngineCase{"tdfs_split", false,
                                     CfgTdfsTinyTimeout},
                          EngineCase{"bfs", true, CfgBfs}),
        ::testing::Values(1, 2, 4, 7, 8, 10)),
    SweepName);

INSTANTIATE_TEST_SUITE_P(
    LabeledSweep, EngineEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(GraphCase{"labeled", SmallLabeled}),
        ::testing::Values(EngineCase{"tdfs_paged", false, CfgTdfsPaged},
                          EngineCase{"tdfs_split", false,
                                     CfgTdfsTinyTimeout},
                          EngineCase{"halfsteal", false, CfgHalfSteal},
                          EngineCase{"newkernel", false, CfgNewKernel},
                          EngineCase{"twodev", false, CfgTwoDevices},
                          EngineCase{"bfs", true, CfgBfs}),
        ::testing::Values(12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22)),
    SweepName);

}  // namespace
}  // namespace tdfs
