#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/io.h"
#include "mem/page_allocator.h"
#include "queue/task_queue.h"

namespace tdfs {
namespace {

// Registry semantics plus one integration test per instrumented site.
// Engine-level recovery behavior lives in resilience_test.cc.

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedNeverFiresAndCountsNothing) {
  EXPECT_FALSE(fail::Armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(TDFS_INJECT_FAILURE("page_alloc"));
  }
  EXPECT_EQ(fail::Calls("page_alloc"), 0);
  EXPECT_EQ(fail::TotalFires(), 0);
}

TEST_F(FailpointTest, NthFiresExactlyOnce) {
  fail::Arm("site", fail::Trigger::Nth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(TDFS_INJECT_FAILURE("site"));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(fail::Calls("site"), 6);
  EXPECT_EQ(fail::Fires("site"), 1);
}

TEST_F(FailpointTest, EveryFiresOnMultiples) {
  fail::Arm("site", fail::Trigger::Every(2));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(TDFS_INJECT_FAILURE("site"));
  }
  EXPECT_EQ(fired,
            (std::vector<bool>{false, true, false, true, false, true}));
  EXPECT_EQ(fail::Fires("site"), 3);
}

TEST_F(FailpointTest, AlwaysFiresEveryCall) {
  fail::Arm("site", fail::Trigger::Always());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(TDFS_INJECT_FAILURE("site"));
  }
  EXPECT_EQ(fail::Fires("site"), 5);
}

TEST_F(FailpointTest, OffSiteIsFullyInert) {
  // An 'off' trigger registers the site but keeps the fast path disarmed:
  // no calls counted, no fires, no global armed flag.
  fail::Arm("site", fail::Trigger::Off());
  EXPECT_FALSE(fail::Armed());
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(TDFS_INJECT_FAILURE("site"));
  }
  EXPECT_EQ(fail::Calls("site"), 0);
  EXPECT_EQ(fail::Fires("site"), 0);
}

TEST_F(FailpointTest, ProbIsDeterministicPerSeedAndRoughlyCalibrated) {
  constexpr int kCalls = 4000;
  auto run = [](uint64_t seed) {
    fail::DisarmAll();
    fail::Arm("site", fail::Trigger::Prob(0.25, seed));
    std::vector<bool> fired;
    for (int i = 0; i < kCalls; ++i) {
      fired.push_back(TDFS_INJECT_FAILURE("site"));
    }
    return fired;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  const std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);  // replayable
  EXPECT_NE(a, c);  // seed actually selects the stream
  int64_t fires = 0;
  for (bool f : a) {
    fires += f ? 1 : 0;
  }
  EXPECT_GT(fires, kCalls / 8);      // ~0.25 +- a lot of slack
  EXPECT_LT(fires, kCalls * 3 / 8);
}

TEST_F(FailpointTest, SitesAreIndependent) {
  fail::Arm("a", fail::Trigger::Always());
  fail::Arm("b", fail::Trigger::Nth(2));
  EXPECT_TRUE(TDFS_INJECT_FAILURE("a"));
  EXPECT_FALSE(TDFS_INJECT_FAILURE("b"));
  EXPECT_TRUE(TDFS_INJECT_FAILURE("b"));
  EXPECT_FALSE(TDFS_INJECT_FAILURE("c"));  // unarmed site, registry armed
  EXPECT_EQ(fail::Fires("a"), 1);
  EXPECT_EQ(fail::Fires("b"), 1);
  EXPECT_EQ(fail::Fires("c"), 0);
}

TEST_F(FailpointTest, DisarmOneSiteLeavesOthers) {
  fail::Arm("a", fail::Trigger::Always());
  fail::Arm("b", fail::Trigger::Always());
  fail::Disarm("a");
  EXPECT_FALSE(TDFS_INJECT_FAILURE("a"));
  EXPECT_TRUE(TDFS_INJECT_FAILURE("b"));
}

TEST_F(FailpointTest, DisarmAllClearsArmedFlagAndCounters) {
  fail::Arm("a", fail::Trigger::Always());
  TDFS_INJECT_FAILURE("a");
  EXPECT_TRUE(fail::Armed());
  EXPECT_EQ(fail::TotalFires(), 1);
  fail::DisarmAll();
  EXPECT_FALSE(fail::Armed());
  EXPECT_EQ(fail::TotalFires(), 0);
  EXPECT_EQ(fail::Calls("a"), 0);
}

TEST_F(FailpointTest, ParseTriggerAcceptsTheGrammar) {
  auto nth = fail::ParseTrigger("nth:5");
  ASSERT_TRUE(nth.ok());
  EXPECT_EQ(nth.value().kind, fail::TriggerKind::kNth);
  EXPECT_EQ(nth.value().n, 5);

  auto every = fail::ParseTrigger("every:3");
  ASSERT_TRUE(every.ok());
  EXPECT_EQ(every.value().kind, fail::TriggerKind::kEvery);

  auto prob = fail::ParseTrigger("prob:0.5:99");
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob.value().kind, fail::TriggerKind::kProb);
  EXPECT_DOUBLE_EQ(prob.value().p, 0.5);
  EXPECT_EQ(prob.value().seed, 99u);

  EXPECT_TRUE(fail::ParseTrigger("always").ok());
  EXPECT_TRUE(fail::ParseTrigger("off").ok());

  EXPECT_FALSE(fail::ParseTrigger("").ok());
  EXPECT_FALSE(fail::ParseTrigger("nth").ok());
  EXPECT_FALSE(fail::ParseTrigger("nth:0").ok());
  EXPECT_FALSE(fail::ParseTrigger("nth:abc").ok());
  EXPECT_FALSE(fail::ParseTrigger("every:-1").ok());
  EXPECT_FALSE(fail::ParseTrigger("prob:1.5").ok());
  EXPECT_FALSE(fail::ParseTrigger("bogus:1").ok());
}

TEST_F(FailpointTest, ArmFromSpecArmsEverySite) {
  ASSERT_TRUE(fail::ArmFromSpec("a=nth:1;b=every:2,c=always").ok());
  EXPECT_TRUE(TDFS_INJECT_FAILURE("a"));
  EXPECT_FALSE(TDFS_INJECT_FAILURE("b"));
  EXPECT_TRUE(TDFS_INJECT_FAILURE("b"));
  EXPECT_TRUE(TDFS_INJECT_FAILURE("c"));
}

TEST_F(FailpointTest, MalformedSpecIsRejectedWithoutPartialApplication) {
  EXPECT_FALSE(fail::ArmFromSpec("a=always;b=nth:notanumber").ok());
  // 'a' must not have been armed by the half-valid spec.
  EXPECT_FALSE(TDFS_INJECT_FAILURE("a"));
}

// ---- instrumented sites ----

TEST_F(FailpointTest, PageAllocSiteFailsAllocation) {
  PageAllocator alloc(4);
  fail::Arm("page_alloc", fail::Trigger::Nth(2));
  PageId first = alloc.AllocPage();
  EXPECT_NE(first, kNullPage);
  EXPECT_EQ(alloc.AllocPage(), kNullPage);  // injected
  EXPECT_NE(alloc.AllocPage(), kNullPage);  // pool was never actually dry
  EXPECT_EQ(fail::Fires("page_alloc"), 1);
}

TEST_F(FailpointTest, QueueSitesFailEnqueueAndDequeue) {
  TaskQueue queue(30);
  fail::Arm("queue_enqueue", fail::Trigger::Nth(1));
  EXPECT_FALSE(queue.Enqueue(Task{1, 2, 3}));  // injected full
  EXPECT_TRUE(queue.Enqueue(Task{1, 2, 3}));
  fail::Arm("queue_dequeue", fail::Trigger::Nth(1));
  Task out;
  EXPECT_FALSE(queue.Dequeue(&out));  // injected empty
  EXPECT_TRUE(queue.Dequeue(&out));   // the task was not lost
  EXPECT_EQ(out.v1, 1);
}

TEST_F(FailpointTest, GraphIoSiteFailsLoads) {
  fail::Arm("graph_io", fail::Trigger::Always());
  Result<Graph> r = LoadEdgeListText("/nonexistent/fake.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().ToString().find("injected"), std::string::npos);
}

}  // namespace
}  // namespace tdfs
