#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tdfs {
namespace {

// Structural invariants every generated graph must satisfy.
void CheckSimpleGraph(const Graph& g) {
  int64_t directed = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    VertexSpan nbrs = g.Neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end())
        << "duplicate neighbor at vertex " << v;
    for (VertexId w : nbrs) {
      EXPECT_NE(w, v) << "self loop";
      EXPECT_TRUE(g.HasEdge(w, v)) << "asymmetric edge";
    }
    directed += static_cast<int64_t>(nbrs.size());
  }
  EXPECT_EQ(directed, g.NumDirectedEdges());
  EXPECT_EQ(directed, 2 * g.NumEdges());
}

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Graph g = GenerateErdosRenyi(500, 2000, 1);
  EXPECT_EQ(g.NumVertices(), 500);
  EXPECT_EQ(g.NumEdges(), 2000);
  CheckSimpleGraph(g);
}

TEST(ErdosRenyiTest, Deterministic) {
  Graph a = GenerateErdosRenyi(200, 800, 42);
  Graph b = GenerateErdosRenyi(200, 800, 42);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    VertexSpan na = a.Neighbors(v);
    VertexSpan nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
  }
}

TEST(ErdosRenyiTest, SeedsDiffer) {
  Graph a = GenerateErdosRenyi(200, 800, 1);
  Graph b = GenerateErdosRenyi(200, 800, 2);
  bool any_diff = false;
  for (VertexId v = 0; v < a.NumVertices() && !any_diff; ++v) {
    VertexSpan na = a.Neighbors(v);
    VertexSpan nb = b.Neighbors(v);
    any_diff = na.size() != nb.size() ||
               !std::equal(na.begin(), na.end(), nb.begin());
  }
  EXPECT_TRUE(any_diff);
}

TEST(ErdosRenyiTest, CompleteGraph) {
  Graph g = GenerateErdosRenyi(10, 45, 3);
  EXPECT_EQ(g.NumEdges(), 45);
  EXPECT_EQ(g.MaxDegree(), 9);
}

TEST(ErdosRenyiDeathTest, TooManyEdgesAborts) {
  EXPECT_DEATH(GenerateErdosRenyi(4, 7, 1), "too many edges");
}

TEST(BarabasiAlbertTest, SizeAndConnectivityShape) {
  Graph g = GenerateBarabasiAlbert(2000, 3, 7);
  EXPECT_EQ(g.NumVertices(), 2000);
  CheckSimpleGraph(g);
  // Every non-seed vertex attaches with exactly 3 edges, so
  // |E| = C(4,2) + (n - 4) * 3.
  EXPECT_EQ(g.NumEdges(), 6 + (2000 - 4) * 3);
  // Minimum degree is the attachment count.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_GE(g.Degree(v), 3);
  }
}

TEST(BarabasiAlbertTest, PowerLawSkew) {
  // Preferential attachment must produce a heavy tail: max degree far
  // above the average (this skew is what creates the paper's stragglers).
  Graph g = GenerateBarabasiAlbert(5000, 3, 11);
  EXPECT_GT(g.MaxDegree(), 8 * static_cast<int64_t>(g.AvgDegree()));
}

TEST(BarabasiAlbertTest, Deterministic) {
  Graph a = GenerateBarabasiAlbert(500, 2, 9);
  Graph b = GenerateBarabasiAlbert(500, 2, 9);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.MaxDegree(), b.MaxDegree());
}

TEST(RmatTest, RespectsBounds) {
  Graph g = GenerateRmat(1000, 5000, 0.57, 0.19, 0.19, 5);
  EXPECT_EQ(g.NumVertices(), 1000);
  EXPECT_LE(g.NumEdges(), 5000);
  EXPECT_GT(g.NumEdges(), 4000);  // few rejections expected
  CheckSimpleGraph(g);
}

TEST(RmatTest, SkewGrowsWithCornerWeight) {
  Graph skewed = GenerateRmat(4096, 20000, 0.7, 0.1, 0.1, 3);
  Graph flat = GenerateRmat(4096, 20000, 0.25, 0.25, 0.25, 3);
  EXPECT_GT(skewed.MaxDegree(), flat.MaxDegree());
}

TEST(RmatTest, Deterministic) {
  Graph a = GenerateRmat(512, 2000, 0.6, 0.15, 0.15, 8);
  Graph b = GenerateRmat(512, 2000, 0.6, 0.15, 0.15, 8);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.MaxDegree(), b.MaxDegree());
}

TEST(PlantedPartitionTest, IntraEdgesDominate) {
  const int64_t n = 1000;
  const int32_t communities = 20;
  Graph g = GeneratePlantedPartition(n, communities, 0.3, 0.001, 13);
  CheckSimpleGraph(g);
  const int64_t community_size = n / communities;
  int64_t intra = 0;
  int64_t inter = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (v / community_size == w / community_size) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  EXPECT_GT(intra, 3 * inter);
}

TEST(PlantedPartitionTest, EdgeCountNearExpectation) {
  const int64_t n = 2000;
  const int32_t communities = 40;  // size 50
  const double p_in = 0.2;
  const double p_out = 0.0005;
  Graph g = GeneratePlantedPartition(n, communities, p_in, p_out, 21);
  const double intra_pairs = communities * 50.0 * 49.0 / 2.0;
  const double inter_pairs = n * (n - 1) / 2.0 - intra_pairs;
  const double expected = intra_pairs * p_in + inter_pairs * p_out;
  EXPECT_NEAR(g.NumEdges(), expected, expected * 0.15);
}

TEST(PlantedPartitionTest, ZeroProbabilitiesYieldEmptyGraph) {
  Graph g = GeneratePlantedPartition(100, 5, 0.0, 0.0, 1);
  EXPECT_EQ(g.NumEdges(), 0);
}

TEST(PlantedPartitionTest, Deterministic) {
  Graph a = GeneratePlantedPartition(300, 10, 0.2, 0.002, 4);
  Graph b = GeneratePlantedPartition(300, 10, 0.2, 0.002, 4);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
}

}  // namespace
}  // namespace tdfs
