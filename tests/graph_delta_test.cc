#include "dyn/graph_delta.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dyn/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace tdfs::dyn {
namespace {

Graph PathGraph(int64_t n) {
  GraphBuilder builder(n);
  for (int64_t v = 0; v + 1 < n; ++v) {
    builder.AddEdge(v, v + 1);
  }
  return builder.Build();
}

TEST(GraphDeltaTest, BuildNormalizesSortsAndDedupes) {
  Result<GraphDelta> delta = GraphDelta::Build(
      /*insertions=*/{{5, 2}, {2, 5}, {1, 3}}, /*deletions=*/{{9, 7}});
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  const std::vector<EdgePair> want_ins = {{1, 3}, {2, 5}};
  EXPECT_EQ(delta.value().insertions(), want_ins);
  const std::vector<EdgePair> want_del = {{7, 9}};
  EXPECT_EQ(delta.value().deletions(), want_del);
  EXPECT_TRUE(delta.value().Inserts(5, 2));
  EXPECT_FALSE(delta.value().Inserts(7, 9));
  EXPECT_TRUE(delta.value().Deletes(7, 9));
  EXPECT_EQ(delta.value().Summary(), "+2 -1 edges");
}

TEST(GraphDeltaTest, BuildRejectsSelfLoopsAndNegativeIds) {
  EXPECT_FALSE(GraphDelta::Build({{3, 3}}, {}).ok());
  EXPECT_FALSE(GraphDelta::Build({}, {{-1, 2}}).ok());
}

TEST(GraphDeltaTest, BuildRejectsEdgeInBothLists) {
  Result<GraphDelta> delta = GraphDelta::Build({{1, 2}}, {{2, 1}});
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphDeltaTest, ValidateChecksRangePresenceAndAbsence) {
  const Graph g = PathGraph(4);  // edges 0-1, 1-2, 2-3

  // Out-of-range endpoint.
  EXPECT_FALSE(
      GraphDelta::Build({{0, 4}}, {}).value().ValidateAgainst(g).ok());
  // Inserting an existing edge.
  EXPECT_FALSE(
      GraphDelta::Build({{1, 2}}, {}).value().ValidateAgainst(g).ok());
  // Deleting a missing edge.
  EXPECT_FALSE(
      GraphDelta::Build({}, {{0, 3}}).value().ValidateAgainst(g).ok());
  // A consistent batch.
  EXPECT_TRUE(
      GraphDelta::Build({{0, 2}}, {{1, 2}}).value().ValidateAgainst(g).ok());
}

TEST(DynamicGraphTest, ApplyInsertsAndDeletes) {
  DynamicGraph dyn(PathGraph(4));
  EXPECT_EQ(dyn.Version(), 0);

  Result<std::shared_ptr<const Graph>> next =
      dyn.Apply(GraphDelta::Build({{0, 2}, {0, 3}}, {{1, 2}}).value());
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(dyn.Version(), 1);

  const Graph& g = *next.value();
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_EQ(g.NumDirectedEdges(), 8);  // 4 undirected edges
}

TEST(DynamicGraphTest, SnapshotIsolationAcrossApply) {
  DynamicGraph dyn(PathGraph(3));
  const std::shared_ptr<const Graph> before = dyn.Snapshot();

  ASSERT_TRUE(dyn.Apply(GraphDelta::Build({{0, 2}}, {}).value()).ok());

  // The old handle still sees the pre-update graph.
  EXPECT_FALSE(before->HasEdge(0, 2));
  EXPECT_TRUE(dyn.Snapshot()->HasEdge(0, 2));
  EXPECT_NE(before.get(), dyn.Snapshot().get());
}

TEST(DynamicGraphTest, ApplyRejectsInvalidBatchWithoutVersionBump) {
  DynamicGraph dyn(PathGraph(3));
  EXPECT_FALSE(dyn.Apply(GraphDelta::Build({{0, 1}}, {}).value()).ok());
  EXPECT_EQ(dyn.Version(), 0);
}

TEST(DynamicGraphTest, PreservesLabels) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.SetLabel(0, 7);
  builder.SetLabel(1, 8);
  builder.SetLabel(2, 9);
  DynamicGraph dyn(builder.Build());

  Result<std::shared_ptr<const Graph>> next =
      dyn.Apply(GraphDelta::Build({{0, 2}}, {}).value());
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next.value()->IsLabeled());
  EXPECT_EQ(next.value()->VertexLabel(0), 7);
  EXPECT_EQ(next.value()->VertexLabel(2), 9);
}

TEST(DynamicGraphTest, SequentialBatchesAccumulate) {
  DynamicGraph dyn(GenerateErdosRenyi(50, 120, /*seed=*/3));
  const int64_t base_edges = dyn.Snapshot()->NumDirectedEdges();

  ASSERT_TRUE(dyn.Apply(GraphDelta::Build({}, {{dyn.Snapshot()->EdgeSource(0),
                                                dyn.Snapshot()->EdgeTarget(0)}})
                            .value())
                  .ok());
  EXPECT_EQ(dyn.Snapshot()->NumDirectedEdges(), base_edges - 2);
  EXPECT_EQ(dyn.Version(), 1);
}

}  // namespace
}  // namespace tdfs::dyn
