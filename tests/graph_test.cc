#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tdfs {
namespace {

Graph TriangleWithTail() {
  // 0-1, 1-2, 2-0 triangle; 2-3 tail.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 3);
  return builder.Build();
}

TEST(GraphBuilderTest, BasicCounts) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 4);
  EXPECT_EQ(g.NumDirectedEdges(), 8);
}

TEST(GraphBuilderTest, DegreesAndMaxDegree) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Degree(2), 3);
  EXPECT_EQ(g.Degree(3), 1);
  EXPECT_EQ(g.MaxDegree(), 3);
  EXPECT_DOUBLE_EQ(g.AvgDegree(), 2.0);
}

TEST(GraphBuilderTest, NeighborsAreSorted) {
  Graph g = TriangleWithTail();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    VertexSpan nbrs = g.Neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
  VertexSpan n2 = g.Neighbors(2);
  EXPECT_EQ(std::vector<VertexId>(n2.begin(), n2.end()),
            (std::vector<VertexId>{0, 1, 3}));
}

TEST(GraphBuilderTest, HasEdgeSymmetric) {
  Graph g = TriangleWithTail();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(3, 0));
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, DuplicateEdgesDeduplicated) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder(5);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 5);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_EQ(g.MaxDegree(), 0);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.Neighbors(v).empty());
  }
}

TEST(GraphBuilderTest, EdgeSourceTargetCoverAllDirectedEdges) {
  Graph g = TriangleWithTail();
  std::multiset<std::pair<VertexId, VertexId>> directed;
  for (int64_t e = 0; e < g.NumDirectedEdges(); ++e) {
    VertexId s = g.EdgeSource(e);
    VertexId t = g.EdgeTarget(e);
    EXPECT_TRUE(g.HasEdge(s, t));
    directed.insert({s, t});
  }
  // Every directed edge appears exactly once.
  EXPECT_EQ(directed.size(), 8u);
  EXPECT_EQ(directed.count({0, 1}), 1u);
  EXPECT_EQ(directed.count({1, 0}), 1u);
  EXPECT_EQ(directed.count({2, 3}), 1u);
  EXPECT_EQ(directed.count({3, 2}), 1u);
}

TEST(GraphBuilderTest, EdgeSourceMatchesCsrRange) {
  Graph g = TriangleWithTail();
  // Directed edge i with source s must satisfy target in Neighbors(s).
  for (int64_t e = 0; e < g.NumDirectedEdges(); ++e) {
    VertexId s = g.EdgeSource(e);
    EXPECT_TRUE(SortedContains(g.Neighbors(s), g.EdgeTarget(e)));
  }
}

TEST(GraphLabelTest, UnlabeledByDefault) {
  Graph g = TriangleWithTail();
  EXPECT_FALSE(g.IsLabeled());
  EXPECT_EQ(g.VertexLabel(0), kNoLabel);
  EXPECT_EQ(g.NumLabels(), 0);
}

TEST(GraphLabelTest, BuilderLabels) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.SetLabel(0, 2);
  builder.SetLabel(1, 0);
  builder.SetLabel(2, 1);
  Graph g = builder.Build();
  EXPECT_TRUE(g.IsLabeled());
  EXPECT_EQ(g.NumLabels(), 3);
  EXPECT_EQ(g.VertexLabel(0), 2);
  EXPECT_EQ(g.VertexLabel(1), 0);
  EXPECT_EQ(g.VertexLabel(2), 1);
}

TEST(GraphLabelTest, AssignUniformLabelsDeterministic) {
  Graph g1 = TriangleWithTail();
  Graph g2 = TriangleWithTail();
  g1.AssignUniformLabels(4, 77);
  g2.AssignUniformLabels(4, 77);
  ASSERT_TRUE(g1.IsLabeled());
  EXPECT_EQ(g1.NumLabels(), 4);
  for (VertexId v = 0; v < g1.NumVertices(); ++v) {
    EXPECT_EQ(g1.VertexLabel(v), g2.VertexLabel(v));
    EXPECT_GE(g1.VertexLabel(v), 0);
    EXPECT_LT(g1.VertexLabel(v), 4);
  }
}

TEST(GraphLabelTest, ClearLabels) {
  Graph g = TriangleWithTail();
  g.AssignUniformLabels(2, 1);
  g.ClearLabels();
  EXPECT_FALSE(g.IsLabeled());
  EXPECT_EQ(g.VertexLabel(0), kNoLabel);
}

TEST(GraphTest, SummaryMentionsShape) {
  Graph g = TriangleWithTail();
  std::string s = g.Summary();
  EXPECT_NE(s.find("|V|=4"), std::string::npos);
  EXPECT_NE(s.find("|E|=4"), std::string::npos);
  EXPECT_NE(s.find("unlabeled"), std::string::npos);
}

TEST(GraphDeathTest, OutOfRangeEdgeAborts) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(0, 2), "out of range");
  EXPECT_DEATH(builder.AddEdge(-1, 0), "out of range");
}

}  // namespace
}  // namespace tdfs
