// Unit tests for the hub bitmap adjacency index: bit/rank correctness,
// threshold gating, per-label bucket keying, and lookup guards.

#include "graph/hub_bitmap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "graph/label_index.h"
#include "util/prng.h"

namespace tdfs {
namespace {

TEST(HubBitmapIndexTest, EmptyGraphAndDisabledThreshold) {
  Graph g = GenerateErdosRenyi(50, 100, 1);
  EXPECT_TRUE(HubBitmapIndex::Build(g, nullptr, 0).empty());
  EXPECT_TRUE(HubBitmapIndex::Build(g, nullptr, -1).empty());
  // Threshold above max degree: nothing qualifies.
  EXPECT_TRUE(HubBitmapIndex::Build(g, nullptr, 10'000).empty());
}

TEST(HubBitmapIndexTest, TestAndRankMatchAdjacencyLists) {
  const Graph g = GenerateHubbedPowerLaw(1500, 2, 5, 400, 77);
  const int64_t threshold = 100;
  const HubBitmapIndex idx = HubBitmapIndex::Build(g, nullptr, threshold);
  ASSERT_FALSE(idx.empty());
  int hubs = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const HubBitmapView* bm = idx.Find(v, kNoLabel);
    if (g.Degree(v) < threshold) {
      EXPECT_EQ(bm, nullptr) << "non-hub " << v << " got a bitmap";
      continue;
    }
    ASSERT_NE(bm, nullptr) << "hub " << v;
    ++hubs;
    const VertexSpan nbrs = g.Neighbors(v);
    EXPECT_EQ(bm->list_size, nbrs.size());
    // Test() agrees with membership, Rank() with lower_bound, for every
    // vertex in the universe (exhaustive: the graph is small).
    size_t next = 0;  // index into nbrs of the first element >= u
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      while (next < nbrs.size() && nbrs[next] < u) {
        ++next;
      }
      const bool member = next < nbrs.size() && nbrs[next] == u;
      ASSERT_EQ(bm->Test(u), member) << "hub " << v << " vertex " << u;
      ASSERT_EQ(bm->Rank(u), next) << "hub " << v << " vertex " << u;
    }
  }
  EXPECT_GE(hubs, 5);
  EXPECT_EQ(idx.num_bitmaps(), static_cast<size_t>(hubs));
  EXPECT_GT(idx.MemoryBytes(), 0);
}

TEST(HubBitmapIndexTest, PerLabelBucketsKeyLikeLabelIndex) {
  Graph g = GenerateHubbedPowerLaw(1200, 2, 4, 350, 5);
  g.AssignUniformLabels(3, 42);
  const LabelIndex index(g);
  const int64_t threshold = 60;
  const HubBitmapIndex idx = HubBitmapIndex::Build(g, &index, threshold);
  ASSERT_FALSE(idx.empty());
  int buckets_found = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (Label l = 0; l < 3; ++l) {
      const VertexSpan span = index.NeighborsWithLabel(v, l);
      const HubBitmapView* bm = idx.Find(v, l);
      if (static_cast<int64_t>(span.size()) < threshold) {
        EXPECT_EQ(bm, nullptr);
        continue;
      }
      ASSERT_NE(bm, nullptr) << "v=" << v << " label=" << l;
      ++buckets_found;
      EXPECT_EQ(bm->list_size, span.size());
      // Bits must reflect the label-filtered span, not the full row.
      for (VertexId u : g.Neighbors(v)) {
        EXPECT_EQ(bm->Test(u), g.VertexLabel(u) == l)
            << "v=" << v << " u=" << u << " label=" << l;
      }
    }
  }
  EXPECT_GT(buckets_found, 0);
}

TEST(HubBitmapIndexTest, FullRowBuildRejectsLabeledLookups) {
  const Graph g = GenerateHubbedPowerLaw(800, 2, 3, 300, 9);
  const HubBitmapIndex idx = HubBitmapIndex::Build(g, nullptr, 64);
  ASSERT_FALSE(idx.empty());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (idx.Find(v, kNoLabel) != nullptr) {
      EXPECT_EQ(idx.Find(v, Label{0}), nullptr);
      EXPECT_EQ(idx.Find(v, Label{2}), nullptr);
      return;  // one hub suffices
    }
  }
  FAIL() << "no hub found";
}

TEST(HubBitmapIndexTest, OutOfRangeOwnersAreSafe) {
  const Graph g = GenerateHubbedPowerLaw(500, 2, 2, 200, 3);
  const HubBitmapIndex idx = HubBitmapIndex::Build(g, nullptr, 64);
  EXPECT_EQ(idx.Find(-1, kNoLabel), nullptr);
  EXPECT_EQ(idx.Find(static_cast<VertexId>(g.NumVertices()), kNoLabel),
            nullptr);
  EXPECT_EQ(idx.Find(1 << 30, kNoLabel), nullptr);
}

}  // namespace
}  // namespace tdfs
