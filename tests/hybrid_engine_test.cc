#include "core/hybrid_engine.h"

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

uint64_t Oracle(const Graph& g, const QueryGraph& q) {
  RunResult r = RunMatchingRef(g, q, TdfsConfig());
  EXPECT_TRUE(r.status.ok());
  return r.match_count;
}

TEST(HybridEngineTest, MatchesOracleAcrossPatterns) {
  Graph g = GenerateErdosRenyi(150, 650, 51);
  for (int i : {1, 2, 3, 4, 8, 10}) {
    RunResult r = RunMatchingHybrid(g, Pattern(i));
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, Oracle(g, Pattern(i))) << PatternName(i);
  }
}

TEST(HybridEngineTest, TinyBudgetDegeneratesToPureDfs) {
  Graph g = GenerateBarabasiAlbert(200, 4, 53);
  EngineConfig config = TdfsConfig();
  config.bfs_memory_budget_bytes = 1;  // nothing fits: switch immediately
  RunResult r = RunMatchingHybrid(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(8)));
  EXPECT_EQ(r.counters.bfs_batches, 0);  // zero BFS levels taken
}

TEST(HybridEngineTest, HugeBudgetDegeneratesToPureBfs) {
  Graph g = GenerateErdosRenyi(120, 500, 57);
  EngineConfig config = TdfsConfig();
  config.bfs_memory_budget_bytes = int64_t{1} << 40;
  RunResult r = RunMatchingHybrid(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(8)));
  // Hexagon: positions 2..4 extended breadth-first, the last one by DFS.
  EXPECT_EQ(r.counters.bfs_batches, 3);
}

TEST(HybridEngineTest, IntermediateBudgetSwitchesMidway) {
  Graph g = GenerateBarabasiAlbert(250, 4, 59);
  EngineConfig small = TdfsConfig();
  small.bfs_memory_budget_bytes = 1;
  EngineConfig mid = TdfsConfig();
  mid.bfs_memory_budget_bytes = 1 << 18;
  EngineConfig big = TdfsConfig();
  big.bfs_memory_budget_bytes = int64_t{1} << 40;
  RunResult rs = RunMatchingHybrid(g, Pattern(9), small);
  RunResult rm = RunMatchingHybrid(g, Pattern(9), mid);
  RunResult rb = RunMatchingHybrid(g, Pattern(9), big);
  ASSERT_TRUE(rs.status.ok());
  ASSERT_TRUE(rm.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_EQ(rs.match_count, rb.match_count);
  EXPECT_EQ(rm.match_count, rb.match_count);
  EXPECT_LE(rs.counters.bfs_batches, rm.counters.bfs_batches);
  EXPECT_LE(rm.counters.bfs_batches, rb.counters.bfs_batches);
}

TEST(HybridEngineTest, LabeledGraphs) {
  Graph g = GenerateErdosRenyi(150, 800, 61);
  g.AssignUniformLabels(4, 3);
  RunResult r = RunMatchingHybrid(g, Pattern(14));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(14)));
}

TEST(HybridEngineTest, EdgePattern) {
  Graph g = GenerateErdosRenyi(80, 200, 63);
  QueryGraph edge(2, {{0, 1}});
  RunResult r = RunMatchingHybrid(g, edge);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, 200u);
}

TEST(HybridEngineTest, DeadlineAborts) {
  Graph g = GenerateBarabasiAlbert(20000, 8, 67);
  EngineConfig config = TdfsConfig();
  config.max_run_ms = 30;
  RunResult r = RunMatchingHybrid(g, Pattern(8), config);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(HybridEngineTest, PeakMemoryRespectsBudgetEstimate) {
  Graph g = GenerateErdosRenyi(150, 700, 69);
  EngineConfig config = TdfsConfig();
  config.bfs_memory_budget_bytes = 1 << 16;
  RunResult r = RunMatchingHybrid(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok());
  // The estimate is an upper bound on reality, so actual materialized
  // bytes stay within budget.
  EXPECT_LE(r.counters.bfs_peak_bytes, config.bfs_memory_budget_bytes);
}

}  // namespace
}  // namespace tdfs
