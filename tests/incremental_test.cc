// Property tests for incremental match maintenance: the incremental
// count (old - lost + gained) must EXACTLY match a full recount by the
// reference engine on the post-update graph, across randomized batches,
// labeled and unlabeled graphs, and symmetry breaking on/off.

#include "dyn/incremental.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "dyn/dynamic_graph.h"
#include "dyn/graph_delta.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "query/patterns.h"
#include "query/plan.h"
#include "util/prng.h"

namespace tdfs::dyn {
namespace {

// Samples a delta valid against `g`: `num_del` distinct existing edges
// and `num_ins` distinct absent edges.
GraphDelta RandomDelta(const Graph& g, int num_ins, int num_del,
                       Xoshiro256ss* rng) {
  std::vector<EdgePair> deletions;
  while (static_cast<int>(deletions.size()) < num_del) {
    const int64_t e = rng->Range(0, g.NumDirectedEdges() - 1);
    const VertexId u = g.EdgeSource(e);
    const VertexId v = g.EdgeTarget(e);
    deletions.emplace_back(u < v ? u : v, u < v ? v : u);
  }
  std::vector<EdgePair> insertions;
  while (static_cast<int>(insertions.size()) < num_ins) {
    const VertexId u = static_cast<VertexId>(rng->Range(0, g.NumVertices() - 1));
    const VertexId v = static_cast<VertexId>(rng->Range(0, g.NumVertices() - 1));
    if (u == v || g.HasEdge(u, v)) {
      continue;
    }
    insertions.emplace_back(u < v ? u : v, u < v ? v : u);
  }
  GraphDelta delta =
      GraphDelta::Build(std::move(insertions), std::move(deletions)).value();
  EXPECT_TRUE(delta.ValidateAgainst(g).ok());
  return delta;
}

uint64_t Recount(const Graph& g, const QueryGraph& q,
                 const EngineConfig& config) {
  const RunResult r = RunMatchingRef(g, q, config);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  return r.match_count;
}

// Core property: for a random batch on a random graph,
//   Recount(pre) - lost + gained == Recount(post).
void CheckIncremental(const Graph& base, const QueryGraph& query,
                      const EngineConfig& config, uint64_t seed,
                      int batches = 3) {
  Xoshiro256ss rng(seed);
  DynamicGraph dyn(base);
  uint64_t count = Recount(*dyn.Snapshot(), query, config);

  for (int b = 0; b < batches; ++b) {
    const std::shared_ptr<const Graph> pre = dyn.Snapshot();
    const GraphDelta delta = RandomDelta(
        *pre, /*num_ins=*/static_cast<int>(rng.Range(0, 6)),
        /*num_del=*/static_cast<int>(rng.Range(0, 4)), &rng);
    Result<std::shared_ptr<const Graph>> post = dyn.Apply(delta);
    ASSERT_TRUE(post.ok()) << post.status().ToString();

    Result<DeltaCountReport> report =
        CountDeltaMatches(*pre, *post.value(), query, delta, config);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    count = report.value().ApplyTo(count);
    const uint64_t full = Recount(*post.value(), query, config);
    ASSERT_EQ(count, full)
        << "batch " << b << " (" << delta.Summary() << "): incremental "
        << count << " vs recount " << full << " (lost "
        << report.value().lost << ", gained " << report.value().gained
        << ")";
  }
}

TEST(IncrementalTest, TriangleOnRandomGraphSymmetryOn) {
  const Graph g = GenerateErdosRenyi(60, 220, /*seed=*/11);
  CheckIncremental(g, Pattern(2) /* triangle-family clique */,
                   TdfsConfig(), /*seed=*/101);
}

TEST(IncrementalTest, UnlabeledPatternsSymmetryOn) {
  const Graph g = GenerateErdosRenyi(50, 170, /*seed=*/7);
  for (int p : {1, 3, 5}) {
    CheckIncremental(g, Pattern(p), TdfsConfig(), /*seed=*/200 + p,
                     /*batches=*/2);
  }
}

TEST(IncrementalTest, SymmetryBreakingOff) {
  const Graph g = GenerateErdosRenyi(40, 130, /*seed=*/5);
  EngineConfig config = TdfsConfig();
  config.use_symmetry_breaking = false;
  for (int p : {1, 2}) {
    CheckIncremental(g, Pattern(p), config, /*seed=*/300 + p,
                     /*batches=*/2);
  }
}

TEST(IncrementalTest, LabeledGraphAndQuery) {
  Graph base = GenerateErdosRenyi(50, 170, /*seed=*/9);
  GraphBuilder builder(base.NumVertices());
  for (int64_t e = 0; e < base.NumDirectedEdges(); ++e) {
    if (base.EdgeSource(e) < base.EdgeTarget(e)) {
      builder.AddEdge(base.EdgeSource(e), base.EdgeTarget(e));
    }
  }
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    builder.SetLabel(v, static_cast<Label>(v % 4));
  }
  CheckIncremental(builder.Build(), Pattern(13), TdfsConfig(), /*seed=*/77,
                   /*batches=*/2);
}

TEST(IncrementalTest, PowerLawGraph) {
  const Graph g = GenerateBarabasiAlbert(80, 3, /*seed=*/13);
  CheckIncremental(g, Pattern(4), TdfsConfig(), /*seed=*/500,
                   /*batches=*/2);
}

TEST(IncrementalTest, PureInsertionAndPureDeletionBatches) {
  const Graph base = GenerateErdosRenyi(40, 140, /*seed=*/21);
  const QueryGraph query = Pattern(2);
  const EngineConfig config = TdfsConfig();
  Xoshiro256ss rng(888);

  DynamicGraph dyn(base);
  uint64_t count = Recount(*dyn.Snapshot(), query, config);

  // Insert-only batch.
  {
    const std::shared_ptr<const Graph> pre = dyn.Snapshot();
    const GraphDelta delta = RandomDelta(*pre, 5, 0, &rng);
    const auto post = dyn.Apply(delta).value();
    const auto report =
        CountDeltaMatches(*pre, *post, query, delta, config).value();
    EXPECT_EQ(report.lost, 0u);
    count = report.ApplyTo(count);
    EXPECT_EQ(count, Recount(*post, query, config));
  }
  // Delete-only batch.
  {
    const std::shared_ptr<const Graph> pre = dyn.Snapshot();
    const GraphDelta delta = RandomDelta(*pre, 0, 5, &rng);
    const auto post = dyn.Apply(delta).value();
    const auto report =
        CountDeltaMatches(*pre, *post, query, delta, config).value();
    EXPECT_EQ(report.gained, 0u);
    count = report.ApplyTo(count);
    EXPECT_EQ(count, Recount(*post, query, config));
  }
}

TEST(IncrementalTest, EmptyDeltaReportsZero) {
  const Graph g = GenerateErdosRenyi(20, 40, /*seed=*/2);
  const GraphDelta delta = GraphDelta::Build({}, {}).value();
  const auto report =
      CountDeltaMatches(g, g, Pattern(1), delta, TdfsConfig()).value();
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.gained, 0u);
  EXPECT_EQ(report.delta_plans_run, 0);
}

TEST(IncrementalTest, RejectsInducedConfigs) {
  const Graph g = GenerateErdosRenyi(20, 40, /*seed=*/2);
  EngineConfig config = TdfsConfig();
  config.induced = true;
  const GraphDelta delta = GraphDelta::Build({{0, 1}}, {}).value();
  Result<DeltaCountReport> report =
      CountDeltaMatches(g, g, Pattern(1), delta, config);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalTest, DeltaPlanCompilationRejectsIncompatibleOptions) {
  const QueryGraph query = Pattern(1);
  PlanOptions options;
  options.delta_edge_rank = 0;
  options.use_symmetry_breaking = true;
  EXPECT_FALSE(CompilePlan(query, options).ok());

  options.use_symmetry_breaking = false;
  options.induced = true;
  EXPECT_FALSE(CompilePlan(query, options).ok());

  options.induced = false;
  options.delta_edge_rank = query.NumEdges();  // out of range
  EXPECT_FALSE(CompilePlan(query, options).ok());

  options.delta_edge_rank = query.NumEdges() - 1;
  EXPECT_TRUE(CompilePlan(query, options).ok());
}

TEST(IncrementalTest, MetricsCountersAreRecorded) {
  const Graph base = GenerateErdosRenyi(30, 80, /*seed=*/4);
  const QueryGraph query = Pattern(1);
  DynamicGraph dyn(base);
  Xoshiro256ss rng(55);
  const std::shared_ptr<const Graph> pre = dyn.Snapshot();
  const GraphDelta delta = RandomDelta(*pre, 3, 2, &rng);
  const auto post = dyn.Apply(delta).value();

  obs::MetricsRegistry metrics;
  IncrementalOptions options;
  options.metrics = &metrics;
  const auto report =
      CountDeltaMatches(*pre, *post, query, delta, TdfsConfig(), options)
          .value();
  EXPECT_GT(report.delta_plans_run, 0);
  EXPECT_GT(report.seed_edges, 0);
  EXPECT_EQ(metrics.GetCounter("dyn.delta_plans_run")->Value(),
            report.delta_plans_run);
  EXPECT_EQ(metrics.GetCounter("dyn.seed_edges")->Value(), report.seed_edges);
}

}  // namespace
}  // namespace tdfs::dyn
