// Vertex-induced matching mode.

#include <gtest/gtest.h>

#include "core/hybrid_engine.h"
#include "core/matcher.h"
#include "graph/generators.h"
#include "query/automorphism.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

Graph CompleteGraph(int n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

EngineConfig Induced() {
  EngineConfig config = TdfsConfig();
  config.induced = true;
  return config;
}

TEST(InducedTest, CompleteGraphHasNoInducedNonCliques) {
  Graph g = CompleteGraph(6);
  // The diamond (K4 minus an edge) requires one NON-edge: impossible in a
  // complete graph when induced.
  RunResult diamond = RunMatching(g, Pattern(1), Induced());
  ASSERT_TRUE(diamond.status.ok());
  EXPECT_EQ(diamond.match_count, 0u);
  // Pentagon, house, hexagon: all have non-edges.
  for (int i : {3, 4, 8}) {
    RunResult r = RunMatching(g, Pattern(i), Induced());
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.match_count, 0u) << PatternName(i);
  }
  // Cliques have no non-edges: induced == non-induced.
  RunResult clique = RunMatching(g, Pattern(2), Induced());
  ASSERT_TRUE(clique.status.ok());
  EXPECT_EQ(clique.match_count, 15u);  // C(6, 4)
}

TEST(InducedTest, InducedPathsInTriangleAreZero) {
  Graph g = CompleteGraph(3);
  QueryGraph path(3, {{0, 1}, {1, 2}});
  RunResult induced = RunMatching(g, path, Induced());
  RunResult loose = RunMatching(g, path, TdfsConfig());
  ASSERT_TRUE(induced.status.ok());
  ASSERT_TRUE(loose.status.ok());
  EXPECT_EQ(induced.match_count, 0u);  // every 3-set is a triangle
  EXPECT_EQ(loose.match_count, 3u);
}

TEST(InducedTest, InducedCountNeverExceedsNonInduced) {
  Graph g = GenerateErdosRenyi(120, 800, 7);
  for (int i : {1, 3, 4, 8, 11}) {
    RunResult induced = RunMatching(g, Pattern(i), Induced());
    RunResult loose = RunMatching(g, Pattern(i), TdfsConfig());
    ASSERT_TRUE(induced.status.ok());
    ASSERT_TRUE(loose.status.ok());
    EXPECT_LE(induced.match_count, loose.match_count) << PatternName(i);
  }
}

TEST(InducedTest, KnownInducedDiamondCount) {
  // K4 minus one edge: exactly one induced diamond, no induced 4-cycle.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(0, 3);
  builder.AddEdge(1, 2);
  builder.AddEdge(1, 3);
  Graph g = builder.Build();
  RunResult diamond = RunMatching(g, Pattern(1), Induced());
  ASSERT_TRUE(diamond.status.ok());
  EXPECT_EQ(diamond.match_count, 1u);
  QueryGraph square(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  RunResult sq = RunMatching(g, square, Induced());
  ASSERT_TRUE(sq.status.ok());
  EXPECT_EQ(sq.match_count, 0u);
}

TEST(InducedTest, EnginesAgreeWithOracle) {
  Graph g = GenerateBarabasiAlbert(150, 3, 9);
  for (int i : {1, 3, 4, 8, 10}) {
    EngineConfig config = Induced();
    config.num_warps = 3;
    RunResult oracle = RunMatchingRef(g, Pattern(i), config);
    ASSERT_TRUE(oracle.status.ok());
    RunResult tdfs = RunMatching(g, Pattern(i), config);
    ASSERT_TRUE(tdfs.status.ok());
    EXPECT_EQ(tdfs.match_count, oracle.match_count) << PatternName(i);
    RunResult bfs = RunMatchingBfs(g, Pattern(i), config);
    ASSERT_TRUE(bfs.status.ok());
    EXPECT_EQ(bfs.match_count, oracle.match_count) << PatternName(i);
    RunResult hybrid = RunMatchingHybrid(g, Pattern(i), config);
    ASSERT_TRUE(hybrid.status.ok());
    EXPECT_EQ(hybrid.match_count, oracle.match_count) << PatternName(i);
  }
}

TEST(InducedTest, DecompositionStaysCorrect) {
  Graph g = GenerateBarabasiAlbert(200, 4, 11);
  EngineConfig config = Induced();
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 96;
  RunResult split = RunMatching(g, Pattern(8), config);
  RunResult oracle = RunMatchingRef(g, Pattern(8), config);
  ASSERT_TRUE(split.status.ok());
  ASSERT_TRUE(oracle.status.ok());
  EXPECT_EQ(split.match_count, oracle.match_count);
  EXPECT_GT(split.counters.tasks_enqueued, 0);
}

TEST(InducedTest, SymmetryPropertyHoldsInInducedMode) {
  Graph g = GenerateErdosRenyi(80, 350, 13);
  for (int i : {1, 4, 8}) {
    EngineConfig with = Induced();
    EngineConfig without = Induced();
    without.use_symmetry_breaking = false;
    RunResult restricted = RunMatching(g, Pattern(i), with);
    RunResult unrestricted = RunMatching(g, Pattern(i), without);
    ASSERT_TRUE(restricted.status.ok());
    ASSERT_TRUE(unrestricted.status.ok());
    EXPECT_EQ(unrestricted.match_count,
              restricted.match_count * AutomorphismCount(Pattern(i)))
        << PatternName(i);
  }
}

TEST(InducedTest, SumOverInducedEqualsNonInducedForTriangleFreePatterns) {
  // Non-induced path-of-3 count = induced-path count + 3 x triangle count
  // (each triangle contains 3 non-induced paths that are not induced).
  Graph g = GenerateErdosRenyi(100, 500, 15);
  QueryGraph path(3, {{0, 1}, {1, 2}});
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  RunResult loose_path = RunMatching(g, path, TdfsConfig());
  RunResult induced_path = RunMatching(g, path, Induced());
  RunResult triangles = RunMatching(g, triangle, TdfsConfig());
  ASSERT_TRUE(loose_path.status.ok());
  ASSERT_TRUE(induced_path.status.ok());
  ASSERT_TRUE(triangles.status.ok());
  EXPECT_EQ(loose_path.match_count,
            induced_path.match_count + 3 * triangles.match_count);
}

}  // namespace
}  // namespace tdfs
