// Differential tests for the pluggable intersection backends: every SIMD
// level and the bitmap arms must produce byte-identical outputs AND
// byte-identical WorkCounter charges versus the scalar reference kernels —
// the property that keeps work_units/simulated-GPU time comparable across
// machines with different vector units.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/matcher.h"
#include "graph/generators.h"
#include "graph/hub_bitmap.h"
#include "query/patterns.h"
#include "util/intersect.h"
#include "util/prng.h"

namespace tdfs {
namespace {

using Vec = std::vector<VertexId>;

Vec SortedSet(Xoshiro256ss& rng, size_t n, VertexId universe) {
  Vec v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<VertexId>(rng.Below(universe)));
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

Vec Reference(const Vec& a, const Vec& b) {
  Vec out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// The category pairs ISSUE calls out: empty, disjoint, subset, hub-sized,
// and sizes straddling the 32x gallop-selection threshold.
std::vector<std::pair<Vec, Vec>> CategoryPairs() {
  Xoshiro256ss rng(20260807);
  std::vector<std::pair<Vec, Vec>> pairs;
  pairs.push_back({{}, {}});
  pairs.push_back({{}, SortedSet(rng, 64, 1000)});
  pairs.push_back({SortedSet(rng, 64, 1000), {}});
  {
    Vec lo, hi;  // fully disjoint ranges
    for (VertexId v = 0; v < 50; ++v) lo.push_back(v);
    for (VertexId v = 1000; v < 1100; ++v) hi.push_back(v);
    pairs.push_back({lo, hi});
  }
  {
    Vec big = SortedSet(rng, 300, 4000);  // strict subset
    Vec sub;
    for (size_t i = 0; i < big.size(); i += 3) sub.push_back(big[i]);
    pairs.push_back({sub, big});
  }
  // Hub-sized: small probe against a large dense list.
  pairs.push_back({SortedSet(rng, 40, 50'000), SortedSet(rng, 8000, 50'000)});
  pairs.push_back(
      {SortedSet(rng, 3000, 50'000), SortedSet(rng, 9000, 50'000)});
  // Threshold boundary: |b| around 32 * |a| flips UseGallopKernel.
  for (size_t nb : {32 * 8 - 1, 32 * 8, 32 * 8 + 1}) {
    pairs.push_back({SortedSet(rng, 8, 2000), SortedSet(rng, nb, 2000)});
  }
  // SIMD-width tails: sizes around multiples of the 4/8-lane blocks.
  for (size_t na : {1, 7, 8, 9, 15, 16, 17, 31}) {
    pairs.push_back({SortedSet(rng, na, 300), SortedSet(rng, na + 5, 300)});
  }
  // Random mixed sizes.
  for (int i = 0; i < 30; ++i) {
    const size_t na = 1 + rng.Below(500);
    const size_t nb = 1 + rng.Below(500);
    pairs.push_back({SortedSet(rng, na, 600), SortedSet(rng, nb, 600)});
  }
  return pairs;
}

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (DetectedSimdLevel() >= SimdLevel::kSse) {
    levels.push_back(SimdLevel::kSse);
  }
  if (DetectedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

TEST(SimdDispatchTest, DetectionAndClamping) {
  // KernelsForLevel never hands out kernels above the detected level.
  for (SimdLevel l :
       {SimdLevel::kScalar, SimdLevel::kSse, SimdLevel::kAvx2}) {
    EXPECT_LE(static_cast<int>(KernelsForLevel(l).level),
              static_cast<int>(DetectedSimdLevel()));
  }
  EXPECT_EQ(KernelsForLevel(SimdLevel::kScalar).level, SimdLevel::kScalar);
  EXPECT_EQ(ProcessKernels().level, DetectedSimdLevel());
}

TEST(SimdDispatchTest, ParseIntersectMode) {
  IntersectMode m = IntersectMode::kAuto;
  EXPECT_TRUE(ParseIntersectMode("scalar", &m));
  EXPECT_EQ(m, IntersectMode::kScalar);
  EXPECT_TRUE(ParseIntersectMode("simd", &m));
  EXPECT_EQ(m, IntersectMode::kSimd);
  EXPECT_TRUE(ParseIntersectMode("bitmap-off", &m));
  EXPECT_EQ(m, IntersectMode::kBitmapOff);
  EXPECT_TRUE(ParseIntersectMode("auto", &m));
  EXPECT_EQ(m, IntersectMode::kAuto);
  EXPECT_FALSE(ParseIntersectMode("vectorish", &m));
  EXPECT_EQ(m, IntersectMode::kAuto);  // untouched on failure
  EXPECT_STREQ(IntersectModeName(IntersectMode::kAuto), "auto");
  EXPECT_TRUE(UsesHubBitmaps(IntersectMode::kAuto));
  EXPECT_FALSE(UsesHubBitmaps(IntersectMode::kSimd));
  EXPECT_FALSE(UsesHubBitmaps(IntersectMode::kScalar));
  EXPECT_FALSE(UsesHubBitmaps(IntersectMode::kBitmapOff));
}

TEST(BackendDifferentialTest, MergeKernelsMatchScalarOutputAndWork) {
  const IntersectKernels& scalar = KernelsForLevel(SimdLevel::kScalar);
  for (const auto& [a, b] : CategoryPairs()) {
    Vec want;
    WorkCounter want_work;
    scalar.merge(VertexSpan(a), VertexSpan(b), &want, &want_work);
    EXPECT_EQ(want, Reference(a, b));
    for (SimdLevel level : AvailableLevels()) {
      const IntersectKernels& k = KernelsForLevel(level);
      Vec got = {12345};  // pre-seeded: kernels must append, not clear
      WorkCounter got_work;
      k.merge(VertexSpan(a), VertexSpan(b), &got, &got_work);
      ASSERT_EQ(got.size(), want.size() + 1)
          << "level=" << SimdLevelName(level) << " |a|=" << a.size()
          << " |b|=" << b.size();
      EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin() + 1));
      EXPECT_EQ(got_work.units, want_work.units)
          << "merge work diverged at level " << SimdLevelName(level)
          << " |a|=" << a.size() << " |b|=" << b.size();
      WorkCounter count_work;
      EXPECT_EQ(k.merge_count(VertexSpan(a), VertexSpan(b), &count_work),
                want.size());
      EXPECT_EQ(count_work.units, want_work.units);
    }
  }
}

TEST(BackendDifferentialTest, GallopKernelsMatchScalarOutputAndWork) {
  const IntersectKernels& scalar = KernelsForLevel(SimdLevel::kScalar);
  for (auto [a, b] : CategoryPairs()) {
    if (a.size() > b.size()) {
      std::swap(a, b);  // gallop kernels require |small| <= |large|
    }
    Vec want;
    WorkCounter want_work;
    scalar.gallop(VertexSpan(a), VertexSpan(b), &want, &want_work);
    EXPECT_EQ(want, Reference(a, b));
    for (SimdLevel level : AvailableLevels()) {
      const IntersectKernels& k = KernelsForLevel(level);
      Vec got;
      WorkCounter got_work;
      k.gallop(VertexSpan(a), VertexSpan(b), &got, &got_work);
      EXPECT_EQ(got, want) << "level=" << SimdLevelName(level);
      EXPECT_EQ(got_work.units, want_work.units)
          << "gallop work diverged at level " << SimdLevelName(level)
          << " |a|=" << a.size() << " |b|=" << b.size();
      WorkCounter count_work;
      EXPECT_EQ(k.gallop_count(VertexSpan(a), VertexSpan(b), &count_work),
                want.size());
      EXPECT_EQ(count_work.units, want_work.units);
    }
  }
}

TEST(WorkModelTest, MergeStepsWorkMatchesScalarCounter) {
  const IntersectKernels& scalar = KernelsForLevel(SimdLevel::kScalar);
  for (const auto& [a, b] : CategoryPairs()) {
    Vec out;
    WorkCounter incremental;
    scalar.merge(VertexSpan(a), VertexSpan(b), &out, &incremental);
    EXPECT_EQ(MergeStepsWork(VertexSpan(a), VertexSpan(b), out.size()),
              incremental.units)
        << "|a|=" << a.size() << " |b|=" << b.size();
  }
}

TEST(WorkModelTest, GallopProbeWorkMatchesGallopLowerBound) {
  // GallopProbeWork(from, r, n) must replay, by index arithmetic alone,
  // exactly what GallopLowerBound charges its WorkCounter.
  Xoshiro256ss rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec hay = SortedSet(rng, 1 + rng.Below(800), 3000);
    for (int probe = 0; probe < 40; ++probe) {
      const VertexId v = static_cast<VertexId>(rng.Below(3100));
      const size_t from = rng.Below(hay.size() + 1);
      WorkCounter charged;
      const size_t r = GallopLowerBound(VertexSpan(hay), from, v, &charged);
      EXPECT_EQ(GallopProbeWork(from, r, hay.size()), charged.units)
          << "from=" << from << " r=" << r << " n=" << hay.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Bitmap arms.
// ---------------------------------------------------------------------------

TEST(BackendDifferentialTest, BitmapArmsMatchScalarOnHubLists) {
  const Graph g = GenerateHubbedPowerLaw(2500, 2, 6, 700, 11);
  const int64_t threshold = 128;
  const HubBitmapIndex bitmaps = HubBitmapIndex::Build(g, nullptr, threshold);
  ASSERT_GT(bitmaps.num_bitmaps(), 0u);
  const IntersectKernels& scalar = KernelsForLevel(SimdLevel::kScalar);
  Xoshiro256ss rng(5);
  int hubs_checked = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const VertexSpan nbrs = g.Neighbors(v);
    const HubBitmapView* bm = bitmaps.Find(v, kNoLabel);
    if (g.Degree(v) < threshold) {
      EXPECT_EQ(bm, nullptr);
      continue;
    }
    ASSERT_NE(bm, nullptr) << "hub " << v << " missing a bitmap";
    // A full-row bitmap must not answer label-filtered lookups.
    EXPECT_EQ(bitmaps.Find(v, Label{0}), nullptr);
    ++hubs_checked;
    for (size_t probe_size : {size_t{3}, size_t{40}, nbrs.size()}) {
      const Vec probe =
          SortedSet(rng, probe_size, static_cast<VertexId>(g.NumVertices()));
      // Merge arm.
      Vec want, got;
      WorkCounter want_work, got_work;
      scalar.merge(VertexSpan(probe), nbrs, &want, &want_work);
      BitmapMergeInto(VertexSpan(probe), nbrs, *bm, &got, &got_work);
      EXPECT_EQ(got, want);
      EXPECT_EQ(got_work.units, want_work.units) << "merge, hub " << v;
      WorkCounter cw;
      EXPECT_EQ(BitmapMergeCount(VertexSpan(probe), nbrs, *bm, &cw),
                want.size());
      EXPECT_EQ(cw.units, want_work.units);
      // Gallop arm.
      Vec gwant, ggot;
      WorkCounter gwant_work, ggot_work;
      scalar.gallop(VertexSpan(probe), nbrs, &gwant, &gwant_work);
      BitmapGallopInto(VertexSpan(probe), nbrs, *bm, &ggot, &ggot_work);
      EXPECT_EQ(ggot, gwant);
      EXPECT_EQ(ggot_work.units, gwant_work.units) << "gallop, hub " << v;
      WorkCounter gcw;
      EXPECT_EQ(BitmapGallopCount(VertexSpan(probe), nbrs, *bm, &gcw),
                gwant.size());
      EXPECT_EQ(gcw.units, gwant_work.units);
    }
  }
  EXPECT_GE(hubs_checked, 6);
}

TEST(BackendDifferentialTest, DispatchAutoMatchesScalarDispatch) {
  const Graph g = GenerateHubbedPowerLaw(2000, 2, 4, 600, 3);
  const HubBitmapIndex bitmaps = HubBitmapIndex::Build(g, nullptr, 64);
  ASSERT_FALSE(bitmaps.empty());
  const IntersectDispatch reference;  // scalar, no bitmaps
  std::vector<IntersectDispatch> backends;
  backends.emplace_back(IntersectMode::kAuto, &bitmaps);
  backends.emplace_back(IntersectMode::kSimd, &bitmaps);  // bitmaps ignored
  backends.emplace_back(IntersectMode::kScalar, &bitmaps);
  EXPECT_TRUE(backends[0].bitmaps_enabled());
  EXPECT_FALSE(backends[1].bitmaps_enabled());
  Xoshiro256ss rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const VertexId owner = static_cast<VertexId>(
        rng.Below(static_cast<uint64_t>(g.NumVertices())));
    const VertexSpan nbrs = g.Neighbors(owner);
    if (nbrs.empty()) {
      continue;
    }
    const Vec a = SortedSet(rng, 1 + rng.Below(300),
                            static_cast<VertexId>(g.NumVertices()));
    Vec want;
    WorkCounter want_work;
    reference.Auto(VertexSpan(a), nbrs, owner, kNoLabel, &want, &want_work);
    for (const IntersectDispatch& d : backends) {
      Vec got;
      WorkCounter got_work;
      d.Auto(VertexSpan(a), nbrs, owner, kNoLabel, &got, &got_work);
      EXPECT_EQ(got, want);
      EXPECT_EQ(got_work.units, want_work.units)
          << "owner=" << owner << " |a|=" << a.size()
          << " |nbrs|=" << nbrs.size();
      WorkCounter count_work;
      EXPECT_EQ(d.Count(VertexSpan(a), nbrs, owner, kNoLabel, &count_work),
                want.size());
      EXPECT_EQ(count_work.units, want_work.units);
    }
  }
}

TEST(BackendDifferentialTest, StoredBaseAllArmsAllBackends) {
  const Graph g = GenerateHubbedPowerLaw(3000, 2, 4, 900, 23);
  const HubBitmapIndex bitmaps = HubBitmapIndex::Build(g, nullptr, 64);
  ASSERT_FALSE(bitmaps.empty());
  const IntersectDispatch reference;
  std::vector<IntersectDispatch> backends;
  backends.emplace_back(IntersectMode::kAuto, &bitmaps);
  backends.emplace_back(IntersectMode::kSimd, &bitmaps);
  Xoshiro256ss rng(31);
  // Pick a hub owner so the bitmap arm actually engages, plus a light one.
  VertexId hub = -1, light = -1;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (bitmaps.Find(v, kNoLabel) != nullptr && hub < 0) hub = v;
    if (g.Degree(v) > 0 && g.Degree(v) < 64 && light < 0) light = v;
  }
  ASSERT_GE(hub, 0);
  ASSERT_GE(light, 0);
  for (VertexId owner : {hub, light}) {
    const VertexSpan list = g.Neighbors(owner);
    // Base sizes driving all three arms: list*32 < base (binary-search),
    // base < list/32 (probe), and comparable (merge).
    const std::vector<size_t> base_sizes = {
        list.size() * 40 + 7, std::max<size_t>(1, list.size() / 40),
        std::max<size_t>(4, list.size())};
    for (size_t base_size : base_sizes) {
      const Vec base =
          SortedSet(rng, base_size, static_cast<VertexId>(g.NumVertices()));
      auto get = [&base](int64_t i) { return base[i]; };
      Vec want;
      WorkCounter want_work;
      Vec scratch;
      IntersectStoredBase(reference, static_cast<int64_t>(base.size()), get,
                          list, owner, kNoLabel, &scratch, &want, &want_work);
      // The legacy overload is the scalar path — must agree with the
      // explicit scalar dispatch.
      Vec legacy;
      WorkCounter legacy_work;
      IntersectStoredBase(static_cast<int64_t>(base.size()), get, list,
                          &legacy, &legacy_work);
      EXPECT_EQ(legacy, want);
      EXPECT_EQ(legacy_work.units, want_work.units);
      for (const IntersectDispatch& d : backends) {
        Vec got;
        WorkCounter got_work;
        IntersectStoredBase(d, static_cast<int64_t>(base.size()), get, list,
                            owner, kNoLabel, &scratch, &got, &got_work);
        EXPECT_EQ(got, want) << "owner=" << owner << " base=" << base.size()
                             << " list=" << list.size();
        EXPECT_EQ(got_work.units, want_work.units)
            << "owner=" << owner << " base=" << base.size()
            << " list=" << list.size();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level invariance: identical match counts AND identical work_units
// across every backend mode, on a hub-heavy graph where bitmaps engage.
// ---------------------------------------------------------------------------

TEST(BackendInvarianceTest, EngineWorkUnitsIdenticalAcrossModes) {
  const Graph g = GenerateHubbedPowerLaw(800, 2, 4, 300, 42);
  const QueryGraph q = Pattern(3);
  auto run = [&](IntersectMode mode) {
    EngineConfig c = TdfsConfig();
    // One warp: with more, which warp picks up which decomposed task is a
    // scheduling race, so max_warp_work_units is not run-deterministic
    // (total work_units is — see the smoke checks in scripts/check.sh).
    c.num_warps = 1;
    c.clock = ClockKind::kVirtual;  // deterministic decomposition
    c.timeout_work_units = 1 << 14;
    c.intersect = mode;
    c.bitmap_min_degree = 64;
    return RunMatching(g, q, c);
  };
  const RunResult want = run(IntersectMode::kScalar);
  ASSERT_TRUE(want.status.ok());
  for (IntersectMode mode : {IntersectMode::kAuto, IntersectMode::kSimd,
                             IntersectMode::kBitmapOff}) {
    const RunResult got = run(mode);
    ASSERT_TRUE(got.status.ok());
    EXPECT_EQ(got.match_count, want.match_count) << IntersectModeName(mode);
    EXPECT_EQ(got.counters.work_units, want.counters.work_units)
        << IntersectModeName(mode);
    EXPECT_EQ(got.counters.max_warp_work_units,
              want.counters.max_warp_work_units)
        << IntersectModeName(mode);
  }
}

TEST(BackendInvarianceTest, BfsEngineInvariantAcrossModes) {
  const Graph g = GenerateHubbedPowerLaw(600, 2, 3, 250, 7);
  const QueryGraph q = Pattern(2);
  auto run = [&](IntersectMode mode) {
    EngineConfig c = PbeConfig();
    c.num_warps = 2;
    c.intersect = mode;
    c.bitmap_min_degree = 64;
    return RunMatchingBfs(g, q, c);
  };
  const RunResult want = run(IntersectMode::kScalar);
  ASSERT_TRUE(want.status.ok());
  for (IntersectMode mode : {IntersectMode::kAuto, IntersectMode::kSimd}) {
    const RunResult got = run(mode);
    ASSERT_TRUE(got.status.ok());
    EXPECT_EQ(got.match_count, want.match_count);
    EXPECT_EQ(got.counters.work_units, want.counters.work_units)
        << IntersectModeName(mode);
  }
}

// Satellite regression: EGSM mode fetches label-filtered neighbor spans
// through the LabelIndex; hub bitmaps must key per (vertex, label) there —
// a full-row bitmap would over-match. Counts must equal the oracle.
TEST(BackendInvarianceTest, EgsmLabelIndexWithHubsMatchesOracle) {
  Graph g = GenerateHubbedPowerLaw(700, 2, 4, 280, 13);
  g.AssignUniformLabels(3, 99);
  for (int p : {1, 3, 5}) {
    const QueryGraph q = Pattern(p);
    EngineConfig egsm = EgsmConfig();
    egsm.num_warps = 2;
    egsm.intersect = IntersectMode::kAuto;
    egsm.bitmap_min_degree = 32;  // low threshold: per-label buckets qualify
    const RunResult got = RunMatching(g, q, egsm);
    ASSERT_TRUE(got.status.ok());
    // Same config for the oracle: EGSM counts every automorphic image
    // (its preset has no symmetry breaking), so the plans must match.
    const RunResult want = RunMatchingRef(g, q, egsm);
    ASSERT_TRUE(want.status.ok());
    EXPECT_EQ(got.match_count, want.match_count) << "P" << p;
    // And the scalar backend agrees on count under the same config.
    EngineConfig scalar = egsm;
    scalar.intersect = IntersectMode::kScalar;
    const RunResult sc = RunMatching(g, q, scalar);
    ASSERT_TRUE(sc.status.ok());
    EXPECT_EQ(sc.match_count, want.match_count) << "P" << p;
  }
}

}  // namespace
}  // namespace tdfs
