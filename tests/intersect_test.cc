#include "util/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/prng.h"

namespace tdfs {
namespace {

using Vec = std::vector<VertexId>;

Vec Intersect(const Vec& a, const Vec& b,
              void (*fn)(VertexSpan, VertexSpan, std::vector<VertexId>*,
                         WorkCounter*)) {
  Vec out;
  fn(VertexSpan(a), VertexSpan(b), &out, nullptr);
  return out;
}

Vec ReferenceIntersect(const Vec& a, const Vec& b) {
  Vec out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(SortedContainsTest, FindsPresentElements) {
  Vec v = {1, 3, 5, 9, 100};
  for (VertexId x : v) {
    EXPECT_TRUE(SortedContains(VertexSpan(v), x));
  }
}

TEST(SortedContainsTest, RejectsAbsentElements) {
  Vec v = {1, 3, 5, 9, 100};
  for (VertexId x : {0, 2, 4, 6, 99, 101}) {
    EXPECT_FALSE(SortedContains(VertexSpan(v), x));
  }
}

TEST(SortedContainsTest, EmptyHaystack) {
  Vec v;
  EXPECT_FALSE(SortedContains(VertexSpan(v), 1));
}

TEST(SortedContainsTest, MetersWork) {
  Vec v(1024);
  for (int i = 0; i < 1024; ++i) {
    v[i] = 2 * i;
  }
  WorkCounter work;
  SortedContains(VertexSpan(v), 512, &work);
  EXPECT_GT(work.units, 0u);
  EXPECT_LE(work.units, 16u);  // ~log2(1024) + 1
}

TEST(GallopLowerBoundTest, MatchesStdLowerBound) {
  Xoshiro256ss rng(5);
  Vec v;
  for (int i = 0; i < 500; ++i) {
    v.push_back(static_cast<VertexId>(rng.Below(2000)));
  }
  std::sort(v.begin(), v.end());
  for (int probe = 0; probe < 200; ++probe) {
    VertexId x = static_cast<VertexId>(rng.Below(2100));
    size_t from = rng.Below(v.size());
    size_t expected =
        std::lower_bound(v.begin() + from, v.end(), x) - v.begin();
    EXPECT_EQ(GallopLowerBound(VertexSpan(v), from, x), expected)
        << "x=" << x << " from=" << from;
  }
}

TEST(GallopLowerBoundTest, FromBeyondEnd) {
  Vec v = {1, 2, 3};
  EXPECT_EQ(GallopLowerBound(VertexSpan(v), 3, 0), 3u);
}

struct KernelCase {
  const char* name;
  void (*fn)(VertexSpan, VertexSpan, std::vector<VertexId>*, WorkCounter*);
};

class IntersectKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(IntersectKernelTest, EmptyInputs) {
  EXPECT_TRUE(Intersect({}, {}, GetParam().fn).empty());
  EXPECT_TRUE(Intersect({1, 2}, {}, GetParam().fn).empty());
  EXPECT_TRUE(Intersect({}, {1, 2}, GetParam().fn).empty());
}

TEST_P(IntersectKernelTest, DisjointInputs) {
  EXPECT_TRUE(Intersect({1, 3, 5}, {2, 4, 6}, GetParam().fn).empty());
}

TEST_P(IntersectKernelTest, IdenticalInputs) {
  Vec v = {1, 5, 9, 12};
  EXPECT_EQ(Intersect(v, v, GetParam().fn), v);
}

TEST_P(IntersectKernelTest, SubsetInputs) {
  EXPECT_EQ(Intersect({2, 4}, {1, 2, 3, 4, 5}, GetParam().fn), Vec({2, 4}));
  EXPECT_EQ(Intersect({1, 2, 3, 4, 5}, {2, 4}, GetParam().fn), Vec({2, 4}));
}

TEST_P(IntersectKernelTest, RandomizedAgainstStd) {
  Xoshiro256ss rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<VertexId> sa;
    std::set<VertexId> sb;
    const size_t na = rng.Below(60);
    const size_t nb = rng.Below(600);
    for (size_t i = 0; i < na; ++i) {
      sa.insert(static_cast<VertexId>(rng.Below(300)));
    }
    for (size_t i = 0; i < nb; ++i) {
      sb.insert(static_cast<VertexId>(rng.Below(300)));
    }
    Vec a(sa.begin(), sa.end());
    Vec b(sb.begin(), sb.end());
    EXPECT_EQ(Intersect(a, b, GetParam().fn), ReferenceIntersect(a, b))
        << GetParam().name << " trial " << trial;
  }
}

TEST_P(IntersectKernelTest, SkewedSizes) {
  Vec small = {100, 5000, 90000};
  Vec big;
  for (int i = 0; i < 100000; i += 7) {
    big.push_back(i);
  }
  EXPECT_EQ(Intersect(small, big, GetParam().fn),
            ReferenceIntersect(small, big));
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, IntersectKernelTest,
    ::testing::Values(KernelCase{"merge", IntersectMerge},
                      KernelCase{"binary", IntersectBinary},
                      KernelCase{"gallop", IntersectGallop},
                      KernelCase{"auto", IntersectAuto}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return info.param.name;
    });

TEST(IntersectCountTest, MatchesMaterializedSize) {
  Xoshiro256ss rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    std::set<VertexId> sa;
    std::set<VertexId> sb;
    for (size_t i = 0; i < rng.Below(100); ++i) {
      sa.insert(static_cast<VertexId>(rng.Below(200)));
    }
    for (size_t i = 0; i < rng.Below(1000); ++i) {
      sb.insert(static_cast<VertexId>(rng.Below(2000)));
    }
    Vec a(sa.begin(), sa.end());
    Vec b(sb.begin(), sb.end());
    EXPECT_EQ(IntersectCount(VertexSpan(a), VertexSpan(b)),
              ReferenceIntersect(a, b).size());
  }
}

// Property: IntersectCount equals the materialized intersection size on
// size pairs straddling the gallop/merge threshold the auto kernels share
// (ratio kGallopSizeRatio - 1, kGallopSizeRatio, kGallopSizeRatio + 1), so
// both kernel selections — and the selection helper itself — are pinned.
TEST(IntersectCountTest, MatchesMaterializedAcrossKernelThreshold) {
  Xoshiro256ss rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t small_size = 1 + rng.Below(8);
    for (size_t ratio = kGallopSizeRatio - 1; ratio <= kGallopSizeRatio + 1;
         ++ratio) {
      std::set<VertexId> sa;
      std::set<VertexId> sb;
      while (sa.size() < small_size) {
        sa.insert(static_cast<VertexId>(rng.Below(4000)));
      }
      while (sb.size() < small_size * ratio) {
        sb.insert(static_cast<VertexId>(rng.Below(4000)));
      }
      Vec a(sa.begin(), sa.end());
      Vec b(sb.begin(), sb.end());
      ASSERT_EQ(UseGallopKernel(a.size(), b.size()),
                b.size() / a.size() >= kGallopSizeRatio);
      const size_t expected = ReferenceIntersect(a, b).size();
      EXPECT_EQ(IntersectCount(VertexSpan(a), VertexSpan(b)), expected)
          << "trial " << trial << " ratio " << ratio;
      Vec materialized;
      IntersectAuto(VertexSpan(a), VertexSpan(b), &materialized, nullptr);
      EXPECT_EQ(materialized.size(), expected)
          << "trial " << trial << " ratio " << ratio;
    }
  }
}

// The gallop path breaks out early once the large list is exhausted; the
// skipped tail of the small list must not be (mis)counted.
TEST(IntersectCountTest, EarlyBreakTailBeyondLargeListMax) {
  // Force the gallop kernel: |b| / |a| >= kGallopSizeRatio.
  Vec a = {10, 20, 5000, 6000, 7000};
  Vec b;
  for (VertexId v = 0; v < static_cast<VertexId>(a.size() * kGallopSizeRatio);
       ++v) {
    b.push_back(v);  // max(b) = 159 < 5000: a's tail lies beyond b
  }
  ASSERT_TRUE(UseGallopKernel(a.size(), b.size()));
  const size_t expected = ReferenceIntersect(a, b).size();
  ASSERT_EQ(expected, 2u);  // only 10 and 20
  EXPECT_EQ(IntersectCount(VertexSpan(a), VertexSpan(b)), expected);
  Vec materialized;
  IntersectAuto(VertexSpan(a), VertexSpan(b), &materialized, nullptr);
  EXPECT_EQ(materialized.size(), expected);
}

TEST(DifferenceMergeTest, MatchesStdSetDifference) {
  Xoshiro256ss rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    std::set<VertexId> sa;
    std::set<VertexId> sb;
    for (size_t i = 0; i < rng.Below(80); ++i) {
      sa.insert(static_cast<VertexId>(rng.Below(100)));
    }
    for (size_t i = 0; i < rng.Below(80); ++i) {
      sb.insert(static_cast<VertexId>(rng.Below(100)));
    }
    Vec a(sa.begin(), sa.end());
    Vec b(sb.begin(), sb.end());
    Vec expected;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
    Vec out;
    DifferenceMerge(VertexSpan(a), VertexSpan(b), &out);
    EXPECT_EQ(out, expected);
  }
}

TEST(DifferenceMergeTest, EmptySubtrahendCopies) {
  Vec a = {1, 2, 3};
  Vec out;
  DifferenceMerge(VertexSpan(a), VertexSpan(), &out);
  EXPECT_EQ(out, a);
}

TEST(WorkCounterTest, KernelsMeterWorkProportionally) {
  Vec a;
  Vec b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(2 * i);
    b.push_back(3 * i);
  }
  WorkCounter small_work;
  WorkCounter big_work;
  Vec out;
  IntersectMerge(VertexSpan(a).subspan(0, 10), VertexSpan(b).subspan(0, 10),
                 &out, &small_work);
  out.clear();
  IntersectMerge(VertexSpan(a), VertexSpan(b), &out, &big_work);
  EXPECT_GT(big_work.units, small_work.units * 10);
}

}  // namespace
}  // namespace tdfs
