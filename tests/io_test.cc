#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.h"

namespace tdfs {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/tdfs_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, LoadSimpleEdgeList) {
  const std::string path = TempPath("simple.txt");
  WriteFile(path, "# comment\n0 1\n1 2\n2 0\n");
  auto result = LoadEdgeListText(path);
  ASSERT_TRUE(result.ok()) << result.status();
  const Graph& g = result.value();
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST_F(IoTest, SparseIdsCompacted) {
  const std::string path = TempPath("sparse.txt");
  WriteFile(path, "100 900\n900 5000\n");
  auto result = LoadEdgeListText(path);
  ASSERT_TRUE(result.ok());
  const Graph& g = result.value();
  EXPECT_EQ(g.NumVertices(), 3);  // {100, 900, 5000} -> {0, 1, 2}
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST_F(IoTest, PercentCommentsAndBlankLines) {
  const std::string path = TempPath("comments.txt");
  WriteFile(path, "% matrix market style\n\n0 1\n\n% more\n1 2\n");
  auto result = LoadEdgeListText(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 2);
}

TEST_F(IoTest, MalformedLineIsCorruption) {
  const std::string path = TempPath("bad.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  auto result = LoadEdgeListText(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos);
}

TEST_F(IoTest, NegativeIdIsCorruption) {
  const std::string path = TempPath("neg.txt");
  WriteFile(path, "0 -3\n");
  auto result = LoadEdgeListText(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, MissingFileIsIOError) {
  auto result = LoadEdgeListText(TempPath("does_not_exist.txt"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, TextRoundTrip) {
  Graph original = GenerateErdosRenyi(100, 300, 5);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveEdgeListText(original, path).ok());
  auto reloaded = LoadEdgeListText(path);
  ASSERT_TRUE(reloaded.ok());
  const Graph& g = reloaded.value();
  ASSERT_EQ(g.NumVertices(), original.NumVertices());
  ASSERT_EQ(g.NumEdges(), original.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    VertexSpan a = original.Neighbors(v);
    VertexSpan b = g.Neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST_F(IoTest, BinaryRoundTripUnlabeled) {
  Graph original = GenerateBarabasiAlbert(200, 3, 9);
  const std::string path = TempPath("bin_unlabeled.bin");
  ASSERT_TRUE(SaveBinary(original, path).ok());
  auto reloaded = LoadBinary(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  const Graph& g = reloaded.value();
  ASSERT_EQ(g.NumVertices(), original.NumVertices());
  ASSERT_EQ(g.NumEdges(), original.NumEdges());
  EXPECT_FALSE(g.IsLabeled());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    VertexSpan a = original.Neighbors(v);
    VertexSpan b = g.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST_F(IoTest, BinaryRoundTripLabeled) {
  Graph original = GenerateErdosRenyi(150, 400, 2);
  original.AssignUniformLabels(4, 33);
  const std::string path = TempPath("bin_labeled.bin");
  ASSERT_TRUE(SaveBinary(original, path).ok());
  auto reloaded = LoadBinary(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  const Graph& g = reloaded.value();
  ASSERT_TRUE(g.IsLabeled());
  EXPECT_EQ(g.NumLabels(), original.NumLabels());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.VertexLabel(v), original.VertexLabel(v));
  }
}

TEST_F(IoTest, BinaryBadMagicIsCorruption) {
  const std::string path = TempPath("bad_magic.bin");
  WriteFile(path, "this is definitely not a tdfs binary graph header");
  auto result = LoadBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, BinaryTruncatedIsCorruption) {
  Graph original = GenerateErdosRenyi(50, 100, 1);
  const std::string full = TempPath("full.bin");
  ASSERT_TRUE(SaveBinary(original, full).ok());
  // Copy a truncated prefix.
  std::ifstream in(full, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::string cut = TempPath("cut.bin");
  std::ofstream out(cut, std::ios::binary);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();
  auto result = LoadBinary(cut);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tdfs
