#include "obs/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>

namespace tdfs::obs {
namespace {

std::string Compact(const std::function<void(JsonWriter*)>& fill) {
  std::ostringstream oss;
  JsonWriter w(oss, /*indent=*/0);
  fill(&w);
  return oss.str();
}

TEST(JsonWriterTest, EmptyContainers) {
  EXPECT_EQ(Compact([](JsonWriter* w) {
              w->BeginObject();
              w->EndObject();
            }),
            "{}");
  EXPECT_EQ(Compact([](JsonWriter* w) {
              w->BeginArray();
              w->EndArray();
            }),
            "[]");
}

TEST(JsonWriterTest, CommasAndNesting) {
  const std::string doc = Compact([](JsonWriter* w) {
    w->BeginObject();
    w->KeyValue("a", 1);
    w->Key("b");
    w->BeginArray();
    w->Value(2);
    w->Value("x");
    w->EndArray();
    w->KeyValue("c", true);
    w->EndObject();
  });
  EXPECT_EQ(doc, R"({"a":1,"b":[2,"x"],"c":true})");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\n\t"), R"("a\"b\\c\n\t")");
  EXPECT_EQ(JsonWriter::Escape(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  const std::string doc = Compact([](JsonWriter* w) {
    w->BeginArray();
    w->Value(std::numeric_limits<double>::infinity());
    w->Value(std::numeric_limits<double>::quiet_NaN());
    w->Value(1.5);
    w->EndArray();
  });
  EXPECT_EQ(doc, "[null,null,1.5]");
}

TEST(JsonWriterTest, LargeUint64SurvivesVerbatim) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  const std::string doc = Compact([&](JsonWriter* w) {
    w->BeginArray();
    w->Value(big);
    w->EndArray();
  });
  EXPECT_EQ(doc, "[18446744073709551615]");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null").value().is_null());
  EXPECT_EQ(JsonValue::Parse("true").value().bool_value(), true);
  EXPECT_EQ(JsonValue::Parse("-42").value().Int(), -42);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5e3").value().number(), 2500.0);
  EXPECT_EQ(JsonValue::Parse(R"("hi\n")").value().str(), "hi\n");
}

TEST(JsonParseTest, ExactIntegersBeyondDoublePrecision) {
  // 2^63 - 1 and 2^64 - 1 are not representable as doubles; the parser
  // keeps the lexeme so counters round-trip exactly.
  EXPECT_EQ(JsonValue::Parse("9223372036854775807").value().Int(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(JsonValue::Parse("18446744073709551615").value().Uint(),
            std::numeric_limits<uint64_t>::max());
}

TEST(JsonParseTest, ObjectLookup) {
  Result<JsonValue> doc =
      JsonValue::Parse(R"({"a": {"b": [1, 2, 3]}, "c": false})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue& root = doc.value();
  ASSERT_TRUE(root.Has("a"));
  const JsonValue* b = root.Find("a")->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  EXPECT_EQ(b->array().size(), 3u);
  EXPECT_EQ(b->array()[2].Int(), 3);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());  // trailing junk
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(JsonParseTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonRoundTripTest, WriterOutputParsesBackIdentically) {
  const std::string doc = Compact([](JsonWriter* w) {
    w->BeginObject();
    w->KeyValue("name", "tr\"icky\\");
    w->KeyValue("count", int64_t{1234567890123});
    w->KeyValue("ratio", 0.125);
    w->KeyValue("flag", false);
    w->Key("empty");
    w->BeginObject();
    w->EndObject();
    w->EndObject();
  });
  Result<JsonValue> parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.Find("name")->str(), "tr\"icky\\");
  EXPECT_EQ(root.Find("count")->Int(), 1234567890123);
  EXPECT_DOUBLE_EQ(root.Find("ratio")->number(), 0.125);
  EXPECT_EQ(root.Find("flag")->bool_value(), false);
  EXPECT_TRUE(root.Find("empty")->is_object());
}

TEST(JsonRoundTripTest, PrettyPrintedOutputAlsoParses) {
  std::ostringstream oss;
  JsonWriter w(oss, /*indent=*/2);
  w.BeginObject();
  w.Key("rows");
  w.BeginArray();
  w.Value(1);
  w.Value(2);
  w.EndArray();
  w.EndObject();
  Result<JsonValue> parsed = JsonValue::Parse(oss.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().Find("rows")->array().size(), 2u);
}

}  // namespace
}  // namespace tdfs::obs
