#include "apps/kclique.h"

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"
#include "util/timer.h"

namespace tdfs {
namespace {

Graph CompleteGraph(int n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

uint64_t Binomial(int n, int k) {
  uint64_t result = 1;
  for (int i = 0; i < k; ++i) {
    result = result * static_cast<uint64_t>(n - i) /
             static_cast<uint64_t>(i + 1);
  }
  return result;
}

TEST(KCliqueRefTest, CompleteGraphBinomials) {
  Graph g = CompleteGraph(10);
  for (int k = 2; k <= 6; ++k) {
    EXPECT_EQ(CountKCliquesRef(g, k), Binomial(10, k)) << "k=" << k;
  }
}

TEST(KCliqueRefTest, TriangleFreeGraph) {
  GraphBuilder builder(10);
  for (VertexId v = 1; v < 10; ++v) {
    builder.AddEdge(0, v);  // star
  }
  Graph g = builder.Build();
  EXPECT_EQ(CountKCliquesRef(g, 2), 9u);
  EXPECT_EQ(CountKCliquesRef(g, 3), 0u);
}

TEST(KCliqueTest, MatchesReferenceOnRandomGraphs) {
  Graph g = GenerateErdosRenyi(300, 3000, 21);
  for (int k = 2; k <= 5; ++k) {
    RunResult r = CountKCliques(g, k);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, CountKCliquesRef(g, k)) << "k=" << k;
  }
}

TEST(KCliqueTest, EdgeCountForKTwo) {
  Graph g = GenerateBarabasiAlbert(200, 4, 3);
  RunResult r = CountKCliques(g, 2);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, static_cast<uint64_t>(g.NumEdges()));
}

TEST(KCliqueTest, AgreesWithSubgraphMatchingEngine) {
  // Cross-validation across *independent* pipelines: degeneracy-oriented
  // counting vs the matching engine on clique patterns with symmetry
  // breaking.
  Graph g = GenerateBarabasiAlbert(250, 5, 13);
  const int pattern_for_k[] = {0, 0, 0, 0, 2, 7};  // P2 = K4, P7 = K5
  for (int k : {4, 5}) {
    RunResult clique = CountKCliques(g, k);
    RunResult matching = RunMatching(g, Pattern(pattern_for_k[k]));
    ASSERT_TRUE(clique.status.ok());
    ASSERT_TRUE(matching.status.ok());
    EXPECT_EQ(clique.match_count, matching.match_count) << "k=" << k;
  }
}

TEST(KCliqueTest, TimeoutDecompositionStaysCorrect) {
  Graph g = GenerateBarabasiAlbert(400, 6, 17);
  EngineConfig config = TdfsConfig();
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 64;  // constant decomposition
  config.num_warps = 4;
  for (int k : {3, 4, 5}) {
    RunResult r = CountKCliques(g, k, config);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.match_count, CountKCliquesRef(g, k)) << "k=" << k;
    if (k > 2) {
      EXPECT_GT(r.counters.tasks_enqueued, 0) << "k=" << k;
    }
  }
}

TEST(KCliqueTest, NoStealModeCorrect) {
  Graph g = GenerateErdosRenyi(200, 1500, 19);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNone;
  RunResult r = CountKCliques(g, 4, config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, CountKCliquesRef(g, 4));
  EXPECT_EQ(r.counters.tasks_enqueued, 0);
}

TEST(KCliqueTest, InvalidArguments) {
  Graph g = GenerateErdosRenyi(50, 100, 1);
  EXPECT_FALSE(CountKCliques(g, 1).status.ok());
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kHalfSteal;
  EXPECT_FALSE(CountKCliques(g, 3, config).status.ok());
}

TEST(KCliqueTest, DeadlineAborts) {
  // C(200, 10) ~ 2e16 cliques: unfinishable without the deadline.
  Graph g = CompleteGraph(200);
  EngineConfig config = TdfsConfig();
  config.max_run_ms = 20;
  Timer timer;
  RunResult r = CountKCliques(g, 10, config);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedMillis(), 2000.0);
}

TEST(KCliqueTest, SingleWarp) {
  Graph g = GenerateErdosRenyi(150, 900, 29);
  EngineConfig config = TdfsConfig();
  config.num_warps = 1;
  RunResult r = CountKCliques(g, 3, config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, CountKCliquesRef(g, 3));
}

}  // namespace
}  // namespace tdfs
