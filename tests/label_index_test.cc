#include "graph/label_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"

namespace tdfs {
namespace {

TEST(LabelIndexTest, UnlabeledGraphSingleBucketEqualsCsr) {
  Graph g = GenerateErdosRenyi(200, 800, 1);
  LabelIndex index(g);
  EXPECT_EQ(index.num_buckets_per_vertex(), 1);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    VertexSpan csr = g.Neighbors(v);
    VertexSpan bucket = index.NeighborsWithLabel(v, kNoLabel);
    ASSERT_EQ(bucket.size(), csr.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(csr.begin(), csr.end(), bucket.begin()));
  }
}

TEST(LabelIndexTest, BucketsPartitionTheAdjacencyList) {
  Graph g = GenerateErdosRenyi(300, 1500, 2);
  g.AssignUniformLabels(4, 9);
  LabelIndex index(g);
  EXPECT_EQ(index.num_buckets_per_vertex(), 4);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    size_t total = 0;
    for (Label l = 0; l < 4; ++l) {
      VertexSpan bucket = index.NeighborsWithLabel(v, l);
      total += bucket.size();
      for (VertexId w : bucket) {
        EXPECT_EQ(g.VertexLabel(w), l);
        EXPECT_TRUE(g.HasEdge(v, w));
      }
      EXPECT_TRUE(std::is_sorted(bucket.begin(), bucket.end()));
    }
    EXPECT_EQ(total, g.Neighbors(v).size()) << "vertex " << v;
  }
}

TEST(LabelIndexTest, BucketsAreExactLabelFilters) {
  Graph g = GenerateBarabasiAlbert(400, 3, 3);
  g.AssignUniformLabels(3, 4);
  LabelIndex index(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (Label l = 0; l < 3; ++l) {
      std::vector<VertexId> expected;
      for (VertexId w : g.Neighbors(v)) {
        if (g.VertexLabel(w) == l) {
          expected.push_back(w);
        }
      }
      VertexSpan bucket = index.NeighborsWithLabel(v, l);
      ASSERT_EQ(bucket.size(), expected.size());
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                             bucket.begin()));
    }
  }
}

TEST(LabelIndexTest, EmptyBucketsForMissingLabels) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.SetLabel(0, 0);
  builder.SetLabel(1, 1);
  builder.SetLabel(2, 1);
  builder.SetLabel(3, 2);
  Graph g = builder.Build();
  LabelIndex index(g);
  EXPECT_EQ(index.NeighborsWithLabel(0, 0).size(), 0u);
  EXPECT_EQ(index.NeighborsWithLabel(0, 1).size(), 2u);
  EXPECT_EQ(index.NeighborsWithLabel(0, 2).size(), 0u);
  EXPECT_EQ(index.NeighborsWithLabel(3, 0).size(), 0u);
}

// Regression: a lookup label outside the graph's bucket range used to
// index bucket_offsets_ out of bounds. Sparse label universes hit this
// naturally — a candidate-filtered subgraph can drop every vertex of the
// top label ids, shrinking NumLabels below the query's label values.
TEST(LabelIndexTest, OutOfRangeLabelsReturnEmptyInsteadOfReadingOob) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.SetLabel(0, 0);
  builder.SetLabel(1, 1);
  builder.SetLabel(2, 0);
  builder.SetLabel(3, 1);
  Graph g = builder.Build();
  LabelIndex index(g);
  ASSERT_EQ(index.num_buckets_per_vertex(), 2);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    // Labels the (shrunken) graph has never seen: ids just past the
    // bucket range and far past it, plus a negative id.
    EXPECT_TRUE(index.NeighborsWithLabel(v, 2).empty());
    EXPECT_TRUE(index.NeighborsWithLabel(v, 1000).empty());
    EXPECT_TRUE(index.NeighborsWithLabel(v, -5).empty());
  }
  // In-range lookups are unaffected by the guard.
  EXPECT_EQ(index.NeighborsWithLabel(1, 0).size(), 2u);
}

TEST(LabelIndexTest, MemoryGrowsWithLabelCount) {
  Graph g4 = GenerateErdosRenyi(2000, 10000, 7);
  g4.AssignUniformLabels(4, 1);
  Graph g16 = GenerateErdosRenyi(2000, 10000, 7);
  g16.AssignUniformLabels(16, 1);
  LabelIndex i4(g4);
  LabelIndex i16(g16);
  EXPECT_GT(i16.MemoryBytes(), i4.MemoryBytes());
  // Both exceed the raw adjacency footprint (the CT-index memory overhead
  // story of Table IV).
  EXPECT_GT(i4.MemoryBytes(),
            g4.NumDirectedEdges() * static_cast<int64_t>(sizeof(VertexId)));
}

}  // namespace
}  // namespace tdfs
