#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace tdfs {
namespace {

class CaptureStderr {
 public:
  CaptureStderr() { ::testing::internal::CaptureStderr(); }
  std::string Stop() { return ::testing::internal::GetCapturedStderr(); }
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GlobalLogLevel(); }
  void TearDown() override { GlobalLogLevel() = saved_; }
  LogLevel saved_;
};

TEST_F(LoggingTest, MessagesAtOrAboveThresholdEmitted) {
  GlobalLogLevel() = LogLevel::kInfo;
  CaptureStderr capture;
  TDFS_LOG(Info) << "hello " << 42;
  const std::string out = capture.Stop();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("[I "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, MessagesBelowThresholdDropped) {
  GlobalLogLevel() = LogLevel::kWarning;
  CaptureStderr capture;
  TDFS_LOG(Info) << "should not appear";
  EXPECT_EQ(capture.Stop().find("should not appear"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysAboveDefaultThreshold) {
  GlobalLogLevel() = LogLevel::kWarning;
  CaptureStderr capture;
  TDFS_LOG(Error) << "bad thing";
  EXPECT_NE(capture.Stop().find("bad thing"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  GlobalLogLevel() = LogLevel::kOff;
  CaptureStderr capture;
  TDFS_LOG(Error) << "nope";
  EXPECT_EQ(capture.Stop().find("nope"), std::string::npos);
}

TEST_F(LoggingTest, SinkReceivesLinesInsteadOfStderr) {
  GlobalLogLevel() = LogLevel::kInfo;
  std::vector<std::pair<LogLevel, std::string>> lines;
  LogSink previous = SetLogSink([&lines](LogLevel level,
                                         const std::string& line) {
    lines.emplace_back(level, line);
  });
  EXPECT_FALSE(previous);  // default stderr sink was active
  CaptureStderr capture;
  TDFS_LOG(Info) << "to sink " << 7;
  TDFS_LOG(Error) << "also to sink";
  SetLogSink(nullptr);
  EXPECT_EQ(capture.Stop(), "");  // nothing leaked to stderr
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, LogLevel::kInfo);
  EXPECT_NE(lines[0].second.find("to sink 7"), std::string::npos);
  EXPECT_NE(lines[0].second.find("logging_test.cc"), std::string::npos);
  EXPECT_EQ(lines[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, SinkStillFiltersByLevel) {
  GlobalLogLevel() = LogLevel::kWarning;
  int calls = 0;
  SetLogSink([&calls](LogLevel, const std::string&) { ++calls; });
  TDFS_LOG(Info) << "dropped before the sink";
  TDFS_LOG(Warning) << "delivered";
  SetLogSink(nullptr);
  EXPECT_EQ(calls, 1);
}

TEST_F(LoggingTest, ResettingSinkRestoresStderr) {
  GlobalLogLevel() = LogLevel::kInfo;
  SetLogSink([](LogLevel, const std::string&) {});
  LogSink previous = SetLogSink(nullptr);
  EXPECT_TRUE(previous);  // the lambda came back out
  CaptureStderr capture;
  TDFS_LOG(Info) << "back on stderr";
  EXPECT_NE(capture.Stop().find("back on stderr"), std::string::npos);
}

TEST(ParseLogLevelTest, AcceptsAllNamesCaseInsensitively) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("WARNING"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
}

TEST(ParseLogLevelTest, RejectsUnknownNames) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("2"), std::nullopt);
}

TEST(TimerTest, ElapsedGrowsMonotonically) {
  Timer timer;
  const int64_t a = timer.ElapsedNanos();
  int64_t spin = 0;
  for (int i = 0; i < 100000; ++i) {
    spin += i;
  }
  EXPECT_GT(spin, 0);
  const int64_t b = timer.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  for (volatile int i = 0; i < 100000; ++i) {
  }
  const double before = timer.ElapsedMicros();
  timer.Reset();
  EXPECT_LT(timer.ElapsedMicros(), before + 1000.0);
}

TEST(TimerTest, UnitConversionsConsistent) {
  Timer timer;
  const int64_t ns = timer.ElapsedNanos();
  const double ms = timer.ElapsedMillis();
  EXPECT_NEAR(ms, ns * 1e-6, 1.0);  // within 1 ms of each other
}

}  // namespace
}  // namespace tdfs
