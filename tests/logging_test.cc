#include "util/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace tdfs {
namespace {

class CaptureStderr {
 public:
  CaptureStderr() { ::testing::internal::CaptureStderr(); }
  std::string Stop() { return ::testing::internal::GetCapturedStderr(); }
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GlobalLogLevel(); }
  void TearDown() override { SetGlobalLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, MessagesAtOrAboveThresholdEmitted) {
  SetGlobalLogLevel(LogLevel::kInfo);
  CaptureStderr capture;
  TDFS_LOG(Info) << "hello " << 42;
  const std::string out = capture.Stop();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("[I "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, MessagesBelowThresholdDropped) {
  SetGlobalLogLevel(LogLevel::kWarning);
  CaptureStderr capture;
  TDFS_LOG(Info) << "should not appear";
  EXPECT_EQ(capture.Stop().find("should not appear"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysAboveDefaultThreshold) {
  SetGlobalLogLevel(LogLevel::kWarning);
  CaptureStderr capture;
  TDFS_LOG(Error) << "bad thing";
  EXPECT_NE(capture.Stop().find("bad thing"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  SetGlobalLogLevel(LogLevel::kOff);
  CaptureStderr capture;
  TDFS_LOG(Error) << "nope";
  EXPECT_EQ(capture.Stop().find("nope"), std::string::npos);
}

TEST_F(LoggingTest, SinkReceivesLinesInsteadOfStderr) {
  SetGlobalLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> lines;
  LogSink previous = SetLogSink([&lines](LogLevel level,
                                         const std::string& line) {
    lines.emplace_back(level, line);
  });
  EXPECT_FALSE(previous);  // default stderr sink was active
  CaptureStderr capture;
  TDFS_LOG(Info) << "to sink " << 7;
  TDFS_LOG(Error) << "also to sink";
  SetLogSink(nullptr);
  EXPECT_EQ(capture.Stop(), "");  // nothing leaked to stderr
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].first, LogLevel::kInfo);
  EXPECT_NE(lines[0].second.find("to sink 7"), std::string::npos);
  EXPECT_NE(lines[0].second.find("logging_test.cc"), std::string::npos);
  EXPECT_EQ(lines[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, SinkStillFiltersByLevel) {
  SetGlobalLogLevel(LogLevel::kWarning);
  int calls = 0;
  SetLogSink([&calls](LogLevel, const std::string&) { ++calls; });
  TDFS_LOG(Info) << "dropped before the sink";
  TDFS_LOG(Warning) << "delivered";
  SetLogSink(nullptr);
  EXPECT_EQ(calls, 1);
}

TEST_F(LoggingTest, ResettingSinkRestoresStderr) {
  SetGlobalLogLevel(LogLevel::kInfo);
  SetLogSink([](LogLevel, const std::string&) {});
  LogSink previous = SetLogSink(nullptr);
  EXPECT_TRUE(previous);  // the lambda came back out
  CaptureStderr capture;
  TDFS_LOG(Info) << "back on stderr";
  EXPECT_NE(capture.Stop().find("back on stderr"), std::string::npos);
}

// Regression (tsan): concurrent logging while the level and the sink are
// being flipped used to race — LogMessage read the level through a bare
// static reference and the sink was swapped under the emission mutex only.
// Both are atomic now; this test is the tsan witness (run under
// check.sh --obs2's thread-sanitizer pass).
TEST_F(LoggingTest, ConcurrentLoggingLevelAndSinkSwapsAreRaceFree) {
  SetGlobalLogLevel(LogLevel::kInfo);
  std::atomic<int64_t> delivered{0};
  std::atomic<bool> stop{false};
  // Install a counting sink before the loggers can reach stderr, then
  // keep swapping in fresh sinks (never back to stderr) while also
  // flipping the level, so emission races against both mutations.
  SetLogSink([&delivered](LogLevel, const std::string&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::thread> loggers;
  loggers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([&stop, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        TDFS_LOG(Info) << "worker " << t;
      }
    });
  }
  std::thread flipper([&stop, &delivered] {
    for (int i = 0; i < 200; ++i) {
      SetGlobalLogLevel(i % 2 == 0 ? LogLevel::kOff : LogLevel::kInfo);
      SetLogSink([&delivered](LogLevel, const std::string&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      });
    }
    stop.store(true, std::memory_order_relaxed);
  });
  flipper.join();
  for (std::thread& logger : loggers) {
    logger.join();
  }
  SetLogSink(nullptr);
  SUCCEED();  // the assertion is tsan staying silent
}

TEST(ParseLogLevelTest, AcceptsAllNamesCaseInsensitively) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("WARNING"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kOff);
}

TEST(ParseLogLevelTest, RejectsUnknownNames) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("2"), std::nullopt);
}

TEST(TimerTest, ElapsedGrowsMonotonically) {
  Timer timer;
  const int64_t a = timer.ElapsedNanos();
  int64_t spin = 0;
  for (int i = 0; i < 100000; ++i) {
    spin += i;
  }
  EXPECT_GT(spin, 0);
  const int64_t b = timer.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  for (volatile int i = 0; i < 100000; ++i) {
  }
  const double before = timer.ElapsedMicros();
  timer.Reset();
  EXPECT_LT(timer.ElapsedMicros(), before + 1000.0);
}

TEST(TimerTest, UnitConversionsConsistent) {
  Timer timer;
  const int64_t ns = timer.ElapsedNanos();
  const double ms = timer.ElapsedMillis();
  EXPECT_NEAR(ms, ns * 1e-6, 1.0);  // within 1 ms of each other
}

}  // namespace
}  // namespace tdfs
