#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/timer.h"

namespace tdfs {
namespace {

class CaptureStderr {
 public:
  CaptureStderr() { ::testing::internal::CaptureStderr(); }
  std::string Stop() { return ::testing::internal::GetCapturedStderr(); }
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GlobalLogLevel(); }
  void TearDown() override { GlobalLogLevel() = saved_; }
  LogLevel saved_;
};

TEST_F(LoggingTest, MessagesAtOrAboveThresholdEmitted) {
  GlobalLogLevel() = LogLevel::kInfo;
  CaptureStderr capture;
  TDFS_LOG(Info) << "hello " << 42;
  const std::string out = capture.Stop();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("[I "), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, MessagesBelowThresholdDropped) {
  GlobalLogLevel() = LogLevel::kWarning;
  CaptureStderr capture;
  TDFS_LOG(Info) << "should not appear";
  EXPECT_EQ(capture.Stop().find("should not appear"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysAboveDefaultThreshold) {
  GlobalLogLevel() = LogLevel::kWarning;
  CaptureStderr capture;
  TDFS_LOG(Error) << "bad thing";
  EXPECT_NE(capture.Stop().find("bad thing"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  GlobalLogLevel() = LogLevel::kOff;
  CaptureStderr capture;
  TDFS_LOG(Error) << "nope";
  EXPECT_EQ(capture.Stop().find("nope"), std::string::npos);
}

TEST(TimerTest, ElapsedGrowsMonotonically) {
  Timer timer;
  const int64_t a = timer.ElapsedNanos();
  int64_t spin = 0;
  for (int i = 0; i < 100000; ++i) {
    spin += i;
  }
  EXPECT_GT(spin, 0);
  const int64_t b = timer.ElapsedNanos();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  for (volatile int i = 0; i < 100000; ++i) {
  }
  const double before = timer.ElapsedMicros();
  timer.Reset();
  EXPECT_LT(timer.ElapsedMicros(), before + 1000.0);
}

TEST(TimerTest, UnitConversionsConsistent) {
  Timer timer;
  const int64_t ns = timer.ElapsedNanos();
  const double ms = timer.ElapsedMillis();
  EXPECT_NEAR(ms, ns * 1e-6, 1.0);  // within 1 ms of each other
}

}  // namespace
}  // namespace tdfs
