#include "service/match_service.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "dyn/graph_delta.h"
#include "graph/generators.h"
#include "query/patterns.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/prng.h"

namespace tdfs {
namespace {

class MatchServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::DisarmAll();
    graph_ = std::make_unique<Graph>(GenerateBarabasiAlbert(500, 4, 12));
    config_ = TdfsConfig();
    config_.num_warps = 4;
    config_.page_pool_pages = 256;
    config_.page_bytes = 1024;
    config_.queue_capacity_ints = 3 * 1024;
  }
  void TearDown() override { fail::DisarmAll(); }

  std::unique_ptr<Graph> graph_;
  EngineConfig config_;
};

TEST_F(MatchServiceTest, AsyncResultsMatchOneShotRuns) {
  std::vector<uint64_t> expected;
  for (int pattern : {1, 2, 5}) {
    RunResult r = RunMatching(*graph_, Pattern(pattern), config_);
    ASSERT_TRUE(r.status.ok()) << r.status;
    expected.push_back(r.match_count);
  }

  ServiceOptions options;
  options.num_workers = 2;
  MatchService service(*graph_, config_, options);
  std::vector<std::future<RunResult>> futures;
  for (int round = 0; round < 3; ++round) {
    for (int pattern : {1, 2, 5}) {
      futures.push_back(service.Submit(Pattern(pattern)));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    RunResult r = futures[i].get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, expected[i % 3]) << "job " << i;
  }
  const MatchService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.submitted, 9);
  EXPECT_EQ(stats.completed, 9);
  EXPECT_EQ(stats.plan_cache_misses, 3);
  EXPECT_EQ(stats.plan_cache_hits, 6);
  EXPECT_GE(stats.arena_acquires, 9);
}

TEST_F(MatchServiceTest, MultiDeviceJobsMergeLikeTheSyncPath) {
  config_.num_devices = 3;
  RunResult sync = RunMatching(*graph_, Pattern(2), config_);
  ASSERT_TRUE(sync.status.ok()) << sync.status;

  MatchService service(*graph_, config_);
  RunResult r = service.Submit(Pattern(2)).get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, sync.match_count);
  EXPECT_EQ(r.per_device_ms.size(), 3u);
  EXPECT_EQ(r.counters.attempts, sync.counters.attempts);
}

TEST_F(MatchServiceTest, ShardedJobsRunAsOneSliceAndMatchTheOracle) {
  // Sharded configs must not be split across service device slices: the
  // shard runner owns the fan-out, and the service schedules the job as a
  // single slice that dispatches through RunMatchingPlanned.
  config_.num_devices = 2;
  config_.sharding = ShardingKind::kGreedy;
  config_.num_shards = 3;
  RunResult ref = RunMatchingRef(*graph_, Pattern(2), config_);
  ASSERT_TRUE(ref.status.ok()) << ref.status;

  MatchService service(*graph_, config_);
  RunResult r = service.Submit(Pattern(2)).get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, ref.match_count);
  // Per-shard stats prove the job actually went through the shard
  // runner rather than the per-device slice path.
  EXPECT_EQ(r.per_shard.size(), 3u);
}

TEST_F(MatchServiceTest, AdmissionControlRejectsBeyondBound) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_pending_jobs = 2;
  MatchService service(*graph_, config_, options);
  std::vector<std::future<RunResult>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(service.Submit(Pattern(8)));
  }
  int rejected = 0;
  for (auto& f : futures) {
    RunResult r = f.get();
    if (r.status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
    } else {
      EXPECT_TRUE(r.status.ok()) << r.status;
    }
  }
  EXPECT_GT(rejected, 0) << "no submission hit the admission bound";
  EXPECT_EQ(service.GetStats().rejected, rejected);
}

TEST_F(MatchServiceTest, PerJobDeadlineAborts) {
  // An effectively-zero kernel deadline must abort the job with
  // kDeadlineExceeded while leaving other jobs untouched.
  config_.clock = ClockKind::kVirtual;
  MatchService service(*graph_, config_);
  JobOptions strangled;
  strangled.deadline_ms = 1e-9;
  RunResult aborted = service.Submit(Pattern(8), strangled).get();
  EXPECT_EQ(aborted.status.code(), StatusCode::kDeadlineExceeded);

  RunResult fine = service.Submit(Pattern(1)).get();
  EXPECT_TRUE(fine.status.ok()) << fine.status;
}

TEST_F(MatchServiceTest, PerJobFailuresDoNotPoisonTheService) {
  config_.retry.max_attempts = 1;
  MatchService service(*graph_, config_);
  // The 2nd device_run call dies; only the job running then fails.
  fail::Arm("device_run", fail::Trigger::Nth(2));
  std::vector<std::future<RunResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.Submit(Pattern(1)));
  }
  int failed = 0;
  int ok = 0;
  for (auto& f : futures) {
    RunResult r = f.get();
    r.status.ok() ? ++ok : ++failed;
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(ok, 3);
}

TEST_F(MatchServiceTest, DestructionDrainsQueuedJobs) {
  std::vector<std::future<RunResult>> futures;
  {
    ServiceOptions options;
    options.num_workers = 1;
    MatchService service(*graph_, config_, options);
    for (int i = 0; i < 6; ++i) {
      futures.push_back(service.Submit(Pattern(2)));
    }
    // Destructor runs with most jobs still queued.
  }
  for (auto& f : futures) {
    RunResult r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status;
  }
}

TEST_F(MatchServiceTest, StatsAndMetricsAgree) {
  obs::MetricsRegistry metrics;
  MatchService service(*graph_, config_);
  service.AttachMetrics(&metrics);
  ASSERT_TRUE(service.Submit(Pattern(1)).get().status.ok());
  ASSERT_TRUE(service.Submit(Pattern(1)).get().status.ok());
  EXPECT_EQ(metrics.GetCounter("service.jobs_submitted")->Value(), 2);
  EXPECT_EQ(metrics.GetCounter("service.jobs_completed")->Value(), 2);
  EXPECT_EQ(metrics.GetCounter("service.plan_cache_hits")->Value(), 1);
}

// Samples a valid delta against `g`: existing edges for deletions,
// absent pairs for insertions.
dyn::GraphDelta ServiceTestDelta(const Graph& g, int num_ins, int num_del,
                                 uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<dyn::EdgePair> deletions;
  while (static_cast<int>(deletions.size()) < num_del) {
    const int64_t e = rng.Range(0, g.NumDirectedEdges() - 1);
    const VertexId u = g.EdgeSource(e);
    const VertexId v = g.EdgeTarget(e);
    deletions.emplace_back(u, v);
  }
  std::vector<dyn::EdgePair> insertions;
  while (static_cast<int>(insertions.size()) < num_ins) {
    const VertexId u =
        static_cast<VertexId>(rng.Range(0, g.NumVertices() - 1));
    const VertexId v =
        static_cast<VertexId>(rng.Range(0, g.NumVertices() - 1));
    if (u == v || g.HasEdge(u, v)) {
      continue;
    }
    insertions.emplace_back(u, v);
  }
  return dyn::GraphDelta::Build(std::move(insertions), std::move(deletions))
      .value();
}

TEST_F(MatchServiceTest, ContinuousQueriesTrackBatchUpdates) {
  obs::MetricsRegistry metrics;
  MatchService service(*graph_, config_);
  service.AttachMetrics(&metrics);

  Result<int64_t> id1 = service.RegisterContinuousQuery(Pattern(1));
  Result<int64_t> id2 = service.RegisterContinuousQuery(Pattern(2));
  ASSERT_TRUE(id1.ok()) << id1.status();
  ASSERT_TRUE(id2.ok()) << id2.status();
  EXPECT_EQ(service.GetStats().continuous_queries, 2);

  for (int batch = 0; batch < 3; ++batch) {
    const dyn::GraphDelta delta =
        ServiceTestDelta(*service.Snapshot(), 4, 3, 100 + batch);
    Result<MatchService::BatchUpdateReport> report =
        service.ApplyUpdate(delta);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report.value().version, batch + 1);
    ASSERT_EQ(report.value().queries.size(), 2u);

    // Maintained counts must equal a full recount on the new snapshot.
    for (int pattern : {1, 2}) {
      const int64_t id = pattern == 1 ? id1.value() : id2.value();
      const RunResult full =
          RunMatching(*service.Snapshot(), Pattern(pattern), config_);
      ASSERT_TRUE(full.status.ok());
      Result<uint64_t> maintained = service.ContinuousQueryCount(id);
      ASSERT_TRUE(maintained.ok());
      EXPECT_EQ(maintained.value(), full.match_count)
          << "pattern " << pattern << " after batch " << batch;
    }
  }
  EXPECT_EQ(service.GraphVersion(), 3);
  EXPECT_EQ(service.GetStats().batches_applied, 3);
  EXPECT_EQ(metrics.GetCounter("dyn.batches_applied")->Value(), 3);
  EXPECT_EQ(metrics.GetCounter("dyn.edges_inserted")->Value(), 12);
  EXPECT_EQ(metrics.GetCounter("dyn.edges_deleted")->Value(), 9);
  EXPECT_GT(metrics.GetCounter("dyn.delta_plans_run")->Value(), 0);
}

TEST_F(MatchServiceTest, InFlightJobsKeepTheirSnapshot) {
  MatchService service(*graph_, config_);
  // Submit against version 0, then immediately apply a batch. The job
  // captured its snapshot at Submit, so its count is the version-0 count
  // regardless of which side of the engine run the update lands on.
  const RunResult before = RunMatching(*graph_, Pattern(2), config_);
  ASSERT_TRUE(before.status.ok());

  std::future<RunResult> f = service.Submit(Pattern(2));
  const dyn::GraphDelta delta = ServiceTestDelta(*graph_, 6, 4, 7);
  ASSERT_TRUE(service.ApplyUpdate(delta).ok());

  const RunResult r = f.get();
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, before.match_count);

  // A job submitted after the batch sees the new graph.
  const RunResult after =
      RunMatching(*service.Snapshot(), Pattern(2), config_);
  ASSERT_TRUE(after.status.ok());
  const RunResult r2 = service.Submit(Pattern(2)).get();
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.match_count, after.match_count);
}

TEST_F(MatchServiceTest, ApplyUpdateRejectsInvalidBatches) {
  MatchService service(*graph_, config_);
  // Re-inserting an edge the graph already has is invalid.
  const dyn::GraphDelta bad =
      dyn::GraphDelta::Build(
          {{graph_->EdgeSource(0), graph_->EdgeTarget(0)}}, {})
          .value();
  Result<MatchService::BatchUpdateReport> report = service.ApplyUpdate(bad);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(service.GraphVersion(), 0);
}

TEST_F(MatchServiceTest, ContinuousQueryHandlesAreValidated) {
  MatchService service(*graph_, config_);
  EXPECT_FALSE(service.ContinuousQueryCount(42).ok());
  EXPECT_FALSE(service.UnregisterContinuousQuery(42).ok());
  Result<int64_t> id = service.RegisterContinuousQuery(Pattern(1));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service.UnregisterContinuousQuery(id.value()).ok());
  EXPECT_FALSE(service.ContinuousQueryCount(id.value()).ok());
  EXPECT_EQ(service.GetStats().continuous_queries, 0);
}

// ---- governor admission control ----

// A concurrent Submit storm against a tiny governor budget: every future
// must complete — served immediately, queued on the governor's waiters
// list and served as memory frees, or failed after its reservation
// deadline — and the stats must account for every submission exactly. No
// job may be silently dropped.
TEST_F(MatchServiceTest, SubmitStormUnderTinyGovernorBudget) {
  MemoryGovernor::Options gov_options;
  // Room for roughly two concurrent slice reservations of the heuristic
  // demand (~24 pages x 1 KiB); the rest of the storm has to wait.
  gov_options.budget_bytes = 64 * 1024;
  MemoryGovernor governor(gov_options);

  ServiceOptions options;
  options.num_workers = 4;
  options.max_pending_jobs = 1024;  // admission never rejects here
  options.governor = &governor;
  options.reserve_timeout_ms = 2000.0;  // generous: jobs are ms-scale
  constexpr int kJobs = 32;
  int ok_jobs = 0;
  int exhausted = 0;
  MatchService::Stats stats;
  {
    MatchService service(*graph_, config_, options);
    std::vector<std::future<RunResult>> futures;
    futures.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
      futures.push_back(service.Submit(Pattern(1 + (i % 2))));
    }
    for (auto& future : futures) {
      RunResult r = future.get();  // every future must become ready
      if (r.status.ok()) {
        ++ok_jobs;
      } else if (r.status.code() == StatusCode::kResourceExhausted) {
        ++exhausted;
      } else {
        FAIL() << "unexpected job status: " << r.status;
      }
    }
    stats = service.GetStats();
  }  // workers joined: the last reservation holder has unwound
  EXPECT_EQ(ok_jobs + exhausted, kJobs);

  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.completed, kJobs);
  // Single-device jobs: one slice each, so every kResourceExhausted
  // future is exactly one recorded reservation timeout.
  EXPECT_EQ(stats.reservation_timeouts, exhausted);
  // All reservations released; nothing leaked into the governor.
  EXPECT_EQ(governor.reserved_bytes(), 0);
}

// Budget below a single slice's reservation: every admitted job waits its
// full deadline, fails kResourceExhausted, and is counted — the waiters
// queue degrades into deterministic deadline-expiry, never a hang.
TEST_F(MatchServiceTest, BudgetBelowOneSliceExpiresEveryJob) {
  MemoryGovernor::Options gov_options;
  gov_options.budget_bytes = 512;  // less than one 1 KiB page
  MemoryGovernor governor(gov_options);

  ServiceOptions options;
  options.num_workers = 2;
  options.governor = &governor;
  options.reserve_timeout_ms = 10.0;
  MatchService service(*graph_, config_, options);

  constexpr int kJobs = 6;
  std::vector<std::future<RunResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(service.Submit(Pattern(1)));
  }
  for (auto& future : futures) {
    RunResult r = future.get();
    EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(r.status.ToString().find("reservation"), std::string::npos);
  }
  const MatchService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.completed, kJobs);
  EXPECT_EQ(stats.reservation_timeouts, kJobs);
  EXPECT_EQ(governor.reserved_bytes(), 0);
  EXPECT_EQ(governor.GetSnapshot().reserve_timeouts, kJobs);
}

// ---- per-stage latency attribution ----

TEST_F(MatchServiceTest, StatsCarryStageLatencyPercentiles) {
  MatchService service(*graph_, config_);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Submit(Pattern(2)).get().status.ok());
  }
  const MatchService::Stats stats = service.GetStats();
  ASSERT_FALSE(stats.stages.empty());
  std::vector<std::string> seen;
  for (const MatchService::Stats::StageStats& stage : stats.stages) {
    seen.push_back(stage.stage);
    EXPECT_EQ(stage.count, 5) << stage.stage;
    EXPECT_LE(stage.p50_us, stage.p95_us) << stage.stage;
    EXPECT_LE(stage.p95_us, stage.p99_us) << stage.stage;
    EXPECT_GE(stage.max_us, 0) << stage.stage;
  }
  // Every submit-to-finalize stage ran for every job.
  for (const char* name :
       {"admission", "plan_cache", "snapshot", "queue_wait", "mem_reserve",
        "arena_lease", "engine_run", "merge", "finalize"}) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), name), seen.end())
        << "missing stage " << name;
  }
  // No update was applied, so delta_apply has no samples.
  EXPECT_EQ(std::find(seen.begin(), seen.end(), "delta_apply"), seen.end());
}

TEST_F(MatchServiceTest, StageHistogramsExportViaMetrics) {
  obs::MetricsRegistry metrics;
  MatchService service(*graph_, config_);
  service.AttachMetrics(&metrics);
  ASSERT_TRUE(service.Submit(Pattern(1)).get().status.ok());
  EXPECT_EQ(metrics.GetHistogram("service.stage_us.engine_run")->Count(), 1);
  EXPECT_EQ(metrics.GetHistogram("service.stage_us.admission")->Count(), 1);
  EXPECT_EQ(metrics.GetHistogram("service.stage_us.finalize")->Count(), 1);
}

// Captures log lines emitted through the global sink for one scope.
class CapturedLog {
 public:
  CapturedLog() {
    previous_ = SetLogSink([this](LogLevel, const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    });
  }
  ~CapturedLog() { SetLogSink(previous_); }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
  LogSink previous_;
};

TEST_F(MatchServiceTest, SlowQueryLogBreaksDownJobLatency) {
  ServiceOptions options;
  options.num_workers = 1;
  options.slow_query_ms = 1e-6;  // everything is slow
  CapturedLog captured;
  MatchService service(*graph_, config_, options);
  const RunResult r = service.Submit(Pattern(5)).get();
  ASSERT_TRUE(r.status.ok()) << r.status;

  std::string line;
  for (const std::string& candidate : captured.lines()) {
    if (candidate.find("slow query:") != std::string::npos) {
      line = candidate;
      break;
    }
  }
  ASSERT_FALSE(line.empty()) << "no slow-query line logged";
  EXPECT_NE(line.find("job="), std::string::npos);
  EXPECT_NE(line.find("fingerprint=0x"), std::string::npos);
  EXPECT_NE(line.find("status=ok"), std::string::npos);
  EXPECT_NE(line.find("devices=1"), std::string::npos);
  EXPECT_NE(line.find("pages_peak="), std::string::npos);
  EXPECT_NE(line.find("attempts="), std::string::npos);

  // Parse total_ms and the stages_ms breakdown; for a single-device job
  // the per-stage times must account for the job wall time.
  const auto number_after = [&line](const std::string& key) {
    const size_t at = line.find(key);
    EXPECT_NE(at, std::string::npos) << key << " missing: " << line;
    return at == std::string::npos ? 0.0
                                   : std::stod(line.substr(at + key.size()));
  };
  const double total_ms = number_after("total_ms=");
  double stage_sum = 0.0;
  for (const char* stage :
       {"admission:", "plan_cache:", "snapshot:", "queue_wait:",
        "mem_reserve:", "arena_lease:", "engine_run:", "merge:",
        "finalize:"}) {
    stage_sum += number_after(stage);
  }
  EXPECT_GT(total_ms, 0.0);
  // Within 5% of wall (plus a small absolute floor for sub-ms jobs where
  // scheduler noise dominates the percentage).
  EXPECT_LE(std::abs(stage_sum - total_ms),
            std::max(0.05 * total_ms, 0.5))
      << "stages " << stage_sum << " vs total " << total_ms << ": " << line;
}

TEST_F(MatchServiceTest, FastJobsAreNotLoggedAsSlow) {
  ServiceOptions options;
  options.slow_query_ms = 60000.0;  // nothing is slow
  CapturedLog captured;
  MatchService service(*graph_, config_, options);
  ASSERT_TRUE(service.Submit(Pattern(1)).get().status.ok());
  for (const std::string& line : captured.lines()) {
    EXPECT_EQ(line.find("slow query:"), std::string::npos) << line;
  }
}

// ---- Prometheus scrape endpoint ----

std::string ServiceHttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(MatchServiceTest, MetricsServerScrapesLiveService) {
  // No AttachMetrics call: the service provisions its own registry.
  MatchService service(*graph_, config_);
  ASSERT_TRUE(service.StartMetricsServer(0).ok());
  ASSERT_GT(service.metrics_port(), 0);
  ASSERT_TRUE(service.Submit(Pattern(1)).get().status.ok());

  const std::string response =
      ServiceHttpGet(service.metrics_port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(
      response.find(
          "tdfs_service_jobs_completed{name=\"service.jobs_completed\"} 1"),
      std::string::npos);
  EXPECT_NE(response.find("tdfs_service_stage_us_engine_run_count"),
            std::string::npos);

  EXPECT_FALSE(service.StartMetricsServer(0).ok()) << "double start";
  service.StopMetricsServer();
  EXPECT_EQ(service.metrics_port(), 0);
  service.StopMetricsServer();  // idempotent
}

TEST_F(MatchServiceTest, MetricsServerUsesAttachedRegistry) {
  obs::MetricsRegistry metrics;
  MatchService service(*graph_, config_);
  service.AttachMetrics(&metrics);
  metrics.GetCounter("custom.marker")->Add(41);
  ASSERT_TRUE(service.StartMetricsServer(0).ok());
  const std::string response =
      ServiceHttpGet(service.metrics_port(), "/metrics");
  EXPECT_NE(response.find("tdfs_custom_marker{name=\"custom.marker\"} 41"),
            std::string::npos);
  service.StopMetricsServer();
}

// ---- span ledger integration ----

TEST_F(MatchServiceTest, JobsRecordSpanTreesOnTheTrace) {
  obs::TraceSession trace;
  config_.trace = &trace;
  config_.num_devices = 2;
  MatchService service(*graph_, config_);
  ASSERT_TRUE(service.Submit(Pattern(2)).get().status.ok());

  obs::SpanLedger* ledger = trace.spans();
  ASSERT_NE(ledger, nullptr);
  const std::vector<obs::SpanLedger::Record> records = ledger->Records();
  uint64_t root_id = 0;
  for (const obs::SpanLedger::Record& r : records) {
    if (r.name == "job") {
      root_id = r.id;
    }
  }
  ASSERT_NE(root_id, 0u) << "no job root span";
  std::vector<std::string> children;
  int engine_runs = 0;
  for (const obs::SpanLedger::Record& r : records) {
    EXPECT_GE(r.end_ns, r.start_ns) << r.name << " left open";
    if (r.parent == root_id) {
      children.push_back(r.name);
      if (r.name == "engine_run") {
        ++engine_runs;
      }
    }
  }
  for (const char* name : {"admission", "snapshot", "queue_wait",
                           "arena_lease", "merge", "finalize"}) {
    EXPECT_NE(std::find(children.begin(), children.end(), name),
              children.end())
        << "span " << name << " not under the job root";
  }
  EXPECT_EQ(engine_runs, 2) << "one engine_run span per device slice";
}

TEST_F(MatchServiceTest, ApplyUpdateRecordsDeltaSpanAndStage) {
  obs::TraceSession trace;
  config_.trace = &trace;
  MatchService service(*graph_, config_);
  ASSERT_TRUE(service.RegisterContinuousQuery(Pattern(1)).ok());
  const dyn::GraphDelta delta = ServiceTestDelta(*graph_, 3, 2, 5);
  ASSERT_TRUE(service.ApplyUpdate(delta).ok());

  bool found = false;
  for (const obs::SpanLedger::Record& r : trace.spans()->Records()) {
    if (r.name == "delta_apply") {
      found = true;
      EXPECT_GE(r.end_ns, r.start_ns);
      EXPECT_EQ(r.arg, 1) << "span arg carries the new graph version";
    }
  }
  EXPECT_TRUE(found);
  for (const MatchService::Stats::StageStats& stage :
       service.GetStats().stages) {
    if (stage.stage == "delta_apply") {
      EXPECT_EQ(stage.count, 1);
      return;
    }
  }
  FAIL() << "delta_apply stage missing from stats";
}

}  // namespace
}  // namespace tdfs
