#include "core/match_sink.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

TEST(MatchSinkTest, StoresUpToCapacity) {
  MatchSink sink(3, 2);
  VertexId a[3] = {1, 2, 3};
  VertexId b[3] = {4, 5, 6};
  VertexId c[3] = {7, 8, 9};
  EXPECT_TRUE(sink.Add(std::span<const VertexId>(a)));
  EXPECT_TRUE(sink.Add(std::span<const VertexId>(b)));
  EXPECT_FALSE(sink.Add(std::span<const VertexId>(c)));
  EXPECT_TRUE(sink.Full());
  ASSERT_EQ(sink.NumMatches(), 2);
  EXPECT_EQ(sink.Match(0)[0], 1);
  EXPECT_EQ(sink.Match(1)[2], 6);
}

TEST(MatchSinkTest, ZeroCapacityAlwaysFull) {
  MatchSink sink(2, 0);
  EXPECT_TRUE(sink.Full());
  VertexId a[2] = {1, 2};
  EXPECT_FALSE(sink.Add(std::span<const VertexId>(a)));
}

TEST(MatchSinkTest, ConcurrentAddsNeverExceedCapacity) {
  MatchSink sink(1, 1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sink] {
      VertexId v[1] = {7};
      for (int i = 0; i < 1000; ++i) {
        sink.Add(std::span<const VertexId>(v));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(sink.NumMatches(), 1000);
}

// Regression: admission used to be check-then-act (an unsynchronized
// Full() pre-check followed by the counter bump), which let racing
// appenders all pass the check near the cap. Admission is now a single
// CAS: exactly `capacity` Adds may succeed, no matter how the threads
// interleave. Every thread writes a distinct payload so the test can
// also verify that no stored row is torn or duplicated.
TEST(MatchSinkTest, ConcurrentAdmissionIsExactAtCapacity) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  constexpr int64_t kCapacity = 3001;  // deliberately < kThreads*kPerThread
  MatchSink sink(2, kCapacity);
  std::atomic<int64_t> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, &admitted, t] {
      for (int i = 0; i < kPerThread; ++i) {
        VertexId v[2] = {static_cast<VertexId>(t),
                         static_cast<VertexId>(i)};
        if (sink.Add(std::span<const VertexId>(v))) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Exactness both ways: the sink holds exactly kCapacity rows, and
  // exactly kCapacity callers were told their Add succeeded.
  EXPECT_EQ(sink.NumMatches(), kCapacity);
  EXPECT_EQ(admitted.load(), kCapacity);
  std::set<std::pair<VertexId, VertexId>> rows;
  for (int64_t i = 0; i < sink.NumMatches(); ++i) {
    auto m = sink.Match(i);
    EXPECT_GE(m[0], 0);
    EXPECT_LT(m[0], kThreads);
    EXPECT_GE(m[1], 0);
    EXPECT_LT(m[1], kPerThread);
    rows.emplace(m[0], m[1]);
  }
  // Distinct payloads per (thread, iteration): duplicates would mean a
  // torn or double-copied row.
  EXPECT_EQ(rows.size(), static_cast<size_t>(kCapacity));
}

TEST(MatchSinkCollectTest, CollectsValidTriangles) {
  Graph g = GenerateErdosRenyi(100, 500, 91);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  MatchSink sink(3, 1 << 20);
  RunResult r = RunMatchingCollect(g, triangle, TdfsConfig(), &sink);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(static_cast<uint64_t>(sink.NumMatches()), r.match_count);
  std::set<std::vector<VertexId>> distinct;
  for (int64_t i = 0; i < sink.NumMatches(); ++i) {
    auto m = sink.Match(i);
    EXPECT_TRUE(g.HasEdge(m[0], m[1]));
    EXPECT_TRUE(g.HasEdge(m[1], m[2]));
    EXPECT_TRUE(g.HasEdge(m[2], m[0]));
    distinct.insert(std::vector<VertexId>(m.begin(), m.end()));
  }
  EXPECT_EQ(distinct.size(), static_cast<size_t>(sink.NumMatches()));
}

TEST(MatchSinkCollectTest, CountStaysExactWhenSinkFills) {
  Graph g = GenerateErdosRenyi(100, 500, 93);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  RunResult full = RunMatching(g, triangle, TdfsConfig());
  ASSERT_TRUE(full.status.ok());
  ASSERT_GT(full.match_count, 5u);
  MatchSink sink(3, 5);
  RunResult r = RunMatchingCollect(g, triangle, TdfsConfig(), &sink);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, full.match_count);
  EXPECT_EQ(sink.NumMatches(), 5);
}

TEST(MatchSinkCollectTest, MatchesAgreeWithRefEnumeration) {
  Graph g = GenerateErdosRenyi(60, 250, 95);
  QueryGraph q = Pattern(1);  // diamond
  MatchSink sink(4, 1 << 20);
  RunResult r = RunMatchingCollect(g, q, TdfsConfig(), &sink);
  ASSERT_TRUE(r.status.ok());
  std::set<std::vector<VertexId>> from_engine;
  for (int64_t i = 0; i < sink.NumMatches(); ++i) {
    auto m = sink.Match(i);
    from_engine.insert(std::vector<VertexId>(m.begin(), m.end()));
  }
  std::set<std::vector<VertexId>> from_ref;
  RunResult ref = RunMatchingRef(
      g, q, TdfsConfig(), [&](std::span<const VertexId> m) {
        from_ref.insert(std::vector<VertexId>(m.begin(), m.end()));
      });
  ASSERT_TRUE(ref.status.ok());
  EXPECT_EQ(from_engine, from_ref);
}

TEST(MatchSinkCollectTest, EdgePatternCollection) {
  Graph g = GenerateErdosRenyi(40, 80, 97);
  QueryGraph edge(2, {{0, 1}});
  MatchSink sink(2, 1 << 20);
  RunResult r = RunMatchingCollect(g, edge, TdfsConfig(), &sink);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(static_cast<uint64_t>(sink.NumMatches()), r.match_count);
  for (int64_t i = 0; i < sink.NumMatches(); ++i) {
    auto m = sink.Match(i);
    EXPECT_TRUE(g.HasEdge(m[0], m[1]));
  }
}

TEST(MatchSinkCollectTest, MultiDeviceCollection) {
  Graph g = GenerateErdosRenyi(80, 350, 99);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  EngineConfig config = TdfsConfig();
  config.num_devices = 2;
  MatchSink sink(3, 1 << 20);
  RunResult r = RunMatchingCollect(g, triangle, config, &sink);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(static_cast<uint64_t>(sink.NumMatches()), r.match_count);
}

// Regression: the counting and collection paths must agree on attempt
// accounting. The multi-device collect loop used to leave `attempts` at
// whatever the struct default was instead of deriving it from the device
// results like the counting path does; both paths (and their JSON
// exports) must report a consistent attempts >= 1.
TEST(MatchSinkCollectTest, AttemptsReportedConsistentlyWithCounting) {
  Graph g = GenerateErdosRenyi(80, 350, 99);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  EngineConfig config = TdfsConfig();
  config.num_devices = 2;

  RunResult counted = RunMatching(g, triangle, config);
  ASSERT_TRUE(counted.status.ok());
  MatchSink sink(3, 1 << 20);
  RunResult collected = RunMatchingCollect(g, triangle, config, &sink);
  ASSERT_TRUE(collected.status.ok());

  EXPECT_GE(collected.counters.attempts, 1);
  EXPECT_EQ(collected.counters.attempts, counted.counters.attempts);
  EXPECT_NE(collected.ToJsonString().find("\"attempts\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace tdfs
