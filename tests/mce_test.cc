#include "apps/mce.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/generators.h"

namespace tdfs {
namespace {

Graph CompleteGraph(int n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

TEST(MceRefTest, CompleteGraphHasOneMaximalClique) {
  EXPECT_EQ(CountMaximalCliquesRef(CompleteGraph(7)), 1u);
}

TEST(MceRefTest, CycleMaximalCliquesAreEdges) {
  GraphBuilder builder(6);
  for (VertexId v = 0; v < 6; ++v) {
    builder.AddEdge(v, (v + 1) % 6);
  }
  EXPECT_EQ(CountMaximalCliquesRef(builder.Build()), 6u);
}

TEST(MceRefTest, MoonMoserGraph) {
  // Complete tripartite K(3,3,3): 3^3 = 27 maximal cliques (one vertex per
  // part) — the Moon-Moser extremal family.
  GraphBuilder builder(9);
  for (VertexId u = 0; u < 9; ++u) {
    for (VertexId v = u + 1; v < 9; ++v) {
      if (u / 3 != v / 3) {
        builder.AddEdge(u, v);
      }
    }
  }
  EXPECT_EQ(CountMaximalCliquesRef(builder.Build()), 27u);
}

TEST(MceRefTest, VisitorGetsMaximalCliques) {
  Graph g = GenerateErdosRenyi(60, 300, 31);
  std::set<std::vector<VertexId>> cliques;
  uint64_t count = CountMaximalCliquesRef(
      g, [&](std::span<const VertexId> clique) {
        std::vector<VertexId> c(clique.begin(), clique.end());
        std::sort(c.begin(), c.end());
        // Must be a clique...
        for (size_t i = 0; i < c.size(); ++i) {
          for (size_t j = i + 1; j < c.size(); ++j) {
            EXPECT_TRUE(g.HasEdge(c[i], c[j]));
          }
        }
        // ...and maximal: no vertex adjacent to all members.
        for (VertexId w = 0; w < g.NumVertices(); ++w) {
          bool adjacent_to_all = true;
          for (VertexId m : c) {
            adjacent_to_all =
                adjacent_to_all && w != m && g.HasEdge(w, m);
          }
          EXPECT_FALSE(adjacent_to_all)
              << "clique extendable by " << w;
        }
        EXPECT_TRUE(cliques.insert(c).second) << "duplicate maximal clique";
      });
  EXPECT_EQ(count, cliques.size());
  EXPECT_GT(count, 0u);
}

TEST(MceTest, MatchesReferenceOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Graph g = GenerateErdosRenyi(150, 1200, seed);
    RunResult r = CountMaximalCliques(g);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, CountMaximalCliquesRef(g)) << "seed " << seed;
  }
}

TEST(MceTest, MatchesReferenceOnPowerLawGraph) {
  Graph g = GenerateBarabasiAlbert(300, 5, 37);
  RunResult r = CountMaximalCliques(g);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, CountMaximalCliquesRef(g));
}

TEST(MceTest, MatchesReferenceOnCommunityGraph) {
  Graph g = GeneratePlantedPartition(200, 10, 0.5, 0.01, 41);
  RunResult r = CountMaximalCliques(g);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, CountMaximalCliquesRef(g));
}

TEST(MceTest, TimeoutDecompositionStaysCorrect) {
  Graph g = GenerateBarabasiAlbert(300, 5, 43);
  EngineConfig config = TdfsConfig();
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 64;
  config.num_warps = 4;
  RunResult r = CountMaximalCliques(g, config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, CountMaximalCliquesRef(g));
  EXPECT_GT(r.counters.tasks_enqueued, 0);
}

TEST(MceTest, NoStealModeCorrect) {
  Graph g = GenerateErdosRenyi(120, 700, 47);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNone;
  RunResult r = CountMaximalCliques(g, config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, CountMaximalCliquesRef(g));
}

TEST(MceTest, EmptyGraphHasIsolatedVertexCliques) {
  GraphBuilder builder(5);
  Graph g = builder.Build();
  // Each isolated vertex is a maximal clique of size 1.
  EXPECT_EQ(CountMaximalCliquesRef(g), 5u);
  RunResult r = CountMaximalCliques(g);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, 5u);
}

TEST(MceTest, RejectsUnsupportedStrategies) {
  Graph g = GenerateErdosRenyi(50, 100, 1);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNewKernel;
  EXPECT_FALSE(CountMaximalCliques(g, config).status.ok());
}

}  // namespace
}  // namespace tdfs
