#include "mem/memory_governor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "mem/page_allocator.h"
#include "mem/warp_stack.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

// ---- governor: budget, pressure, reservations ----

TEST(MemoryGovernorTest, InertWithoutBudget) {
  MemoryGovernor gov;
  gov.RegisterCommitted(1 << 20);
  gov.NoteInUse(1 << 20);  // fully loaded, but no budget set
  EXPECT_EQ(gov.Pressure(), MemPressure::kOk);
  EXPECT_EQ(gov.DeratedBudget(1000), 1000);
  auto r = gov.TryReserve(int64_t{1} << 40);  // absurd; still granted
  EXPECT_TRUE(static_cast<bool>(r));
}

TEST(MemoryGovernorTest, PressureEscalatesWithOccupancy) {
  MemoryGovernor::Options options;
  options.budget_bytes = 1000;
  MemoryGovernor gov(options);
  EXPECT_EQ(gov.Pressure(), MemPressure::kOk);
  gov.NoteInUse(700);  // 0.70 < soft 0.75
  EXPECT_EQ(gov.Pressure(), MemPressure::kOk);
  gov.NoteInUse(60);  // 0.76 >= soft
  EXPECT_EQ(gov.Pressure(), MemPressure::kSoft);
  EXPECT_EQ(gov.DeratedBudget(1000), 500);
  gov.NoteInUse(200);  // 0.96 >= hard
  EXPECT_EQ(gov.Pressure(), MemPressure::kHard);
  EXPECT_EQ(gov.DeratedBudget(1000), 250);
  gov.NoteInUse(-960);
  EXPECT_EQ(gov.Pressure(), MemPressure::kOk);
}

TEST(MemoryGovernorTest, ReservationsCountTowardPressureAndRelease) {
  MemoryGovernor::Options options;
  options.budget_bytes = 1000;
  MemoryGovernor gov(options);
  {
    auto r = gov.TryReserve(800);
    ASSERT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(gov.reserved_bytes(), 800);
    EXPECT_EQ(gov.Pressure(), MemPressure::kSoft);
    // A second reservation that would overflow the budget is refused.
    auto r2 = gov.TryReserve(300);
    EXPECT_FALSE(static_cast<bool>(r2));
  }
  // RAII release.
  EXPECT_EQ(gov.reserved_bytes(), 0);
  EXPECT_EQ(gov.Pressure(), MemPressure::kOk);
}

TEST(MemoryGovernorTest, ReserveBytesTimesOutUnderLoad) {
  MemoryGovernor::Options options;
  options.budget_bytes = 1000;
  MemoryGovernor gov(options);
  auto held = gov.TryReserve(900);
  ASSERT_TRUE(static_cast<bool>(held));
  auto waited = gov.ReserveBytes(500, /*timeout_ms=*/20.0);
  EXPECT_FALSE(static_cast<bool>(waited));
  EXPECT_EQ(gov.GetSnapshot().reserve_timeouts, 1);
}

TEST(MemoryGovernorTest, ReserveBytesWokenByRelease) {
  MemoryGovernor::Options options;
  options.budget_bytes = 1000;
  MemoryGovernor gov(options);
  auto held = gov.TryReserve(900);
  ASSERT_TRUE(static_cast<bool>(held));
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    auto r = gov.ReserveBytes(500, /*timeout_ms=*/5000.0);
    granted.store(static_cast<bool>(r));
  });
  // Give the waiter time to block, then free the budget.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  held.Release();
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_GE(gov.GetSnapshot().reserve_waits, 1);
  EXPECT_EQ(gov.GetSnapshot().reserve_timeouts, 0);
}

TEST(MemoryGovernorTest, SpillGrantsBoundedByCeiling) {
  MemoryGovernor::Options options;
  options.max_spill_bytes = 1024;
  MemoryGovernor gov(options);
  EXPECT_TRUE(gov.TryGrantSpill(512));
  EXPECT_TRUE(gov.TryGrantSpill(512));
  EXPECT_FALSE(gov.TryGrantSpill(1));  // ceiling reached
  gov.ReleaseSpill(512);
  EXPECT_TRUE(gov.TryGrantSpill(512));
  const auto s = gov.GetSnapshot();
  EXPECT_EQ(s.spilled_bytes, 1024);
  EXPECT_EQ(s.spill_grants, 3);
  EXPECT_EQ(s.spill_denials, 1);
}

TEST(MemoryGovernorTest, GlobalResolveFallsBack) {
  MemoryGovernor local;
  EXPECT_EQ(MemoryGovernor::Resolve(&local), &local);
  EXPECT_EQ(MemoryGovernor::Resolve(nullptr), MemoryGovernor::Global());
}

// ---- allocator: host spill tier ----

SpillOptions SpillOn(MemoryGovernor* gov = nullptr,
                                    int32_t max_pages = 0) {
  SpillOptions spill;
  spill.enabled = true;
  spill.max_spill_pages = max_pages;
  spill.governor = gov;
  return spill;
}

TEST(PageAllocatorSpillTest, OverflowGoesToSpillPages) {
  MemoryGovernor gov;
  PageAllocator alloc(2, 64, SpillOn(&gov));
  std::set<PageId> pages;
  for (int i = 0; i < 6; ++i) {
    PageId p = alloc.AllocPage();
    ASSERT_NE(p, kNullPage);
    EXPECT_TRUE(pages.insert(p).second);
  }
  // 2 arena pages, then 4 spill pages above the arena id range.
  int spill_count = 0;
  for (PageId p : pages) {
    if (alloc.IsSpillPage(p)) {
      ++spill_count;
      EXPECT_GE(p, alloc.num_pages());
    }
  }
  EXPECT_EQ(spill_count, 4);
  EXPECT_EQ(alloc.PagesInUse(), 6);  // both tiers: true demand
  EXPECT_EQ(alloc.SpillPagesInUse(), 4);
  EXPECT_EQ(alloc.TotalSpillAllocs(), 4);
  EXPECT_EQ(alloc.AllocMisses(), 0);
}

TEST(PageAllocatorSpillTest, SpillPageDataIsWritableAndDistinct) {
  MemoryGovernor gov;
  PageAllocator alloc(1, 64, SpillOn(&gov));  // 16 ints per page
  PageId arena = alloc.AllocPage();
  PageId spill = alloc.AllocPage();
  ASSERT_TRUE(alloc.IsSpillPage(spill));
  ASSERT_FALSE(alloc.IsSpillPage(arena));
  for (int i = 0; i < 16; ++i) {
    alloc.PageData(arena)[i] = 100 + i;
    alloc.PageData(spill)[i] = 200 + i;
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(alloc.PageData(arena)[i], 100 + i);
    EXPECT_EQ(alloc.PageData(spill)[i], 200 + i);
  }
}

TEST(PageAllocatorSpillTest, SpillFreeAndSlotReuse) {
  MemoryGovernor gov;
  PageAllocator alloc(1, 64, SpillOn(&gov));
  PageId arena = alloc.AllocPage();
  PageId spill = alloc.AllocPage();
  ASSERT_TRUE(alloc.IsSpillPage(spill));
  alloc.FreePage(spill);
  EXPECT_EQ(alloc.SpillPagesInUse(), 0);
  EXPECT_EQ(gov.spilled_bytes(), 0);  // grant returned
  PageId again = alloc.AllocPage();
  EXPECT_TRUE(alloc.IsSpillPage(again));  // slot recycled
  alloc.FreePage(again);
  alloc.FreePage(arena);
  EXPECT_EQ(alloc.SpillPagesPeak(), 1);
}

TEST(PageAllocatorSpillTest, MaxSpillPagesCapsTheTier) {
  MemoryGovernor gov;
  PageAllocator alloc(1, 64, SpillOn(&gov, /*max_pages=*/2));
  EXPECT_NE(alloc.AllocPage(), kNullPage);  // arena
  EXPECT_NE(alloc.AllocPage(), kNullPage);  // spill 1
  EXPECT_NE(alloc.AllocPage(), kNullPage);  // spill 2
  EXPECT_EQ(alloc.AllocPage(), kNullPage);  // capped
  EXPECT_EQ(alloc.AllocMisses(), 1);
}

TEST(PageAllocatorSpillTest, GovernorByteCeilingDeniesSpill) {
  MemoryGovernor::Options options;
  options.max_spill_bytes = 64;  // exactly one 64-byte page
  MemoryGovernor gov(options);
  PageAllocator alloc(1, 64, SpillOn(&gov));
  EXPECT_NE(alloc.AllocPage(), kNullPage);  // arena
  EXPECT_NE(alloc.AllocPage(), kNullPage);  // spill, consumes the grant
  EXPECT_EQ(alloc.AllocPage(), kNullPage);  // grant denied
  EXPECT_EQ(alloc.AllocMisses(), 1);
  EXPECT_EQ(gov.GetSnapshot().spill_denials, 1);
}

TEST(PageAllocatorSpillTest, AllocMissesCountedWithoutSpill) {
  // Satellite fix: a dry pool used to return kNullPage with no counter.
  PageAllocator alloc(2, 64);
  EXPECT_NE(alloc.AllocPage(), kNullPage);
  EXPECT_NE(alloc.AllocPage(), kNullPage);
  EXPECT_EQ(alloc.AllocPage(), kNullPage);
  EXPECT_EQ(alloc.AllocPage(), kNullPage);
  EXPECT_EQ(alloc.AllocMisses(), 2);
  alloc.ResetStats();
  EXPECT_EQ(alloc.AllocMisses(), 0);
}

TEST(PageAllocatorSpillTest, PromoteCopiesContentsBackToArena) {
  MemoryGovernor gov;
  PageAllocator alloc(2, 64, SpillOn(&gov));
  PageId a = alloc.AllocPage();
  PageId b = alloc.AllocPage();
  PageId spill = alloc.AllocPage();
  ASSERT_TRUE(alloc.IsSpillPage(spill));
  for (int i = 0; i < 16; ++i) {
    alloc.PageData(spill)[i] = 300 + i;
  }
  // Arena still full: promotion has nowhere to go.
  EXPECT_EQ(alloc.TryPromote(spill), kNullPage);
  alloc.FreePage(a);
  PageId promoted = alloc.TryPromote(spill);
  ASSERT_NE(promoted, kNullPage);
  EXPECT_FALSE(alloc.IsSpillPage(promoted));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(alloc.PageData(promoted)[i], 300 + i);
  }
  EXPECT_EQ(alloc.SpillPagesInUse(), 0);
  EXPECT_EQ(alloc.SpillPromotions(), 1);
  // Promotion is tier movement, not a fresh allocation.
  EXPECT_EQ(alloc.TotalAllocs(), 3);
  alloc.FreePage(b);
  alloc.FreePage(promoted);
  EXPECT_EQ(alloc.PagesInUse(), 0);
}

TEST(PageAllocatorSpillTest, ConcurrentSpillAllocFreeConservesPages) {
  MemoryGovernor gov;
  PageAllocator alloc(8, 64, SpillOn(&gov));
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&alloc, &failed] {
      std::vector<PageId> held;
      for (int i = 0; i < kIters; ++i) {
        if (held.size() < 4) {
          PageId p = alloc.AllocPage();
          if (p != kNullPage) {
            alloc.PageData(p)[0] = p;
            held.push_back(p);
          }
        } else {
          PageId p = held.back();
          held.pop_back();
          if (alloc.PageData(p)[0] != p) {
            failed.store(true);
          }
          alloc.FreePage(p);
        }
      }
      for (PageId p : held) {
        if (alloc.PageData(p)[0] != p) {
          failed.store(true);
        }
        alloc.FreePage(p);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(alloc.PagesInUse(), 0);
  EXPECT_EQ(alloc.SpillPagesInUse(), 0);
  EXPECT_EQ(gov.spilled_bytes(), 0);
}

// ---- end-to-end: out-of-core exactness ----

// The exactness bar from the spill tier's contract: with spill enabled, a
// starved arena must reproduce the oversized-arena run bit-exactly — same
// match count AND same work_units (the traversal is identical; only page
// placement differs). Bit-identity is only a meaningful bar under a
// deterministic schedule, so this runs single-warp with virtual-clock
// timeouts: multi-warp interleaving perturbs work_units run-to-run even
// WITHOUT spill (verified empirically), which would make the comparison
// measure scheduler noise, not the spill tier. The multi-warp test below
// covers count-exactness under a real parallel schedule.
TEST(SpillExactnessTest, StarvedArenaMatchesOracleBitExactly) {
  const Graph g = GenerateHubbedPowerLaw(2000, 3, /*num_hubs=*/3,
                                         /*hub_degree=*/400, /*seed=*/7);
  for (int pattern : {1, 2, 5, 8}) {
    EngineConfig oracle_config = TdfsConfig();
    oracle_config.num_warps = 1;  // deterministic schedule
    oracle_config.page_bytes = 256;
    oracle_config.clock = ClockKind::kVirtual;
    oracle_config.timeout_work_units = 4096;
    RunResult oracle = RunMatching(g, Pattern(pattern), oracle_config);
    ASSERT_TRUE(oracle.status.ok()) << oracle.status;
    ASSERT_GT(oracle.counters.pages_peak, 1);

    // An arena 10x smaller than the true footprint (floor 1 page) —
    // nearly everything the stack touches must go through the spill tier.
    EngineConfig starved = oracle_config;
    starved.page_pool_pages = std::max<int32_t>(
        1, static_cast<int32_t>(oracle.counters.pages_peak / 10));
    starved.spill_to_host = true;
    MemoryGovernor gov;  // fresh, inert: no budget, default spill ceiling
    starved.governor = &gov;
    RunResult spilled = RunMatching(g, Pattern(pattern), starved);
    ASSERT_TRUE(spilled.status.ok())
        << "P" << pattern << ": " << spilled.status;
    EXPECT_EQ(spilled.match_count, oracle.match_count) << "P" << pattern;
    EXPECT_EQ(spilled.counters.work_units, oracle.counters.work_units)
        << "P" << pattern;
    EXPECT_GT(spilled.counters.spill_allocs, 0) << "P" << pattern;
    EXPECT_FALSE(spilled.counters.degraded_mode) << "P" << pattern;

    // The seed behavior on the same arena: kResourceExhausted.
    EngineConfig no_spill = starved;
    no_spill.spill_to_host = false;
    no_spill.governor = nullptr;
    RunResult dry = RunMatching(g, Pattern(pattern), no_spill);
    EXPECT_EQ(dry.status.code(), StatusCode::kResourceExhausted)
        << "P" << pattern;
  }
}

// Multi-warp: the parallel schedule varies run-to-run, so work_units is
// scheduler noise — but the match count must still be exact, and the run
// must complete without degradation on the starved arena.
TEST(SpillExactnessTest, MultiWarpStarvedArenaCountsExactly) {
  const Graph g = GenerateHubbedPowerLaw(2000, 3, /*num_hubs=*/3,
                                         /*hub_degree=*/400, /*seed=*/7);
  for (int pattern : {1, 5, 8}) {
    EngineConfig oracle_config = TdfsConfig();
    oracle_config.num_warps = 4;
    oracle_config.page_bytes = 256;
    oracle_config.clock = ClockKind::kVirtual;
    oracle_config.timeout_work_units = 4096;
    RunResult oracle = RunMatching(g, Pattern(pattern), oracle_config);
    ASSERT_TRUE(oracle.status.ok()) << oracle.status;

    EngineConfig starved = oracle_config;
    starved.page_pool_pages = std::max<int32_t>(
        1, static_cast<int32_t>(oracle.counters.pages_peak / 10));
    starved.spill_to_host = true;
    MemoryGovernor gov;
    starved.governor = &gov;
    RunResult spilled = RunMatching(g, Pattern(pattern), starved);
    ASSERT_TRUE(spilled.status.ok())
        << "P" << pattern << ": " << spilled.status;
    EXPECT_EQ(spilled.match_count, oracle.match_count) << "P" << pattern;
    EXPECT_FALSE(spilled.counters.degraded_mode) << "P" << pattern;
  }
}

TEST(SpillExactnessTest, SpillCountersSurfaceInSummary) {
  const Graph g = GenerateBarabasiAlbert(500, 4, 3);
  EngineConfig config = TdfsConfig();
  config.num_warps = 4;
  config.page_bytes = 64;
  config.page_pool_pages = 2;
  config.spill_to_host = true;
  MemoryGovernor gov;
  config.governor = &gov;
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  ASSERT_GT(r.counters.spill_allocs, 0);
  EXPECT_GT(r.counters.spill_pages_peak, 0);
  EXPECT_NE(r.Summary().find("spill"), std::string::npos);
}

// Eager promotion: once arena pages free up, a stack's spill pages move
// back (contents intact) via PromoteSpilled — the between-tasks pass the
// engine runs as pressure drops.
TEST(SpillExactnessTest, PromoteSpilledRewritesTablesAndPreservesData) {
  MemoryGovernor gov;
  SpillOptions spill;
  spill.enabled = true;
  spill.governor = &gov;
  PageAllocator alloc(2, 64, spill);  // 16 ints per page

  // A neighbor stack hogs the whole arena, so ours lands in the spill
  // tier from the first page.
  PagedWarpStack hog(&alloc, /*num_levels=*/1);
  ASSERT_EQ(hog.TrySet(0, 0, 1), StackWrite::kOk);
  ASSERT_EQ(hog.TrySet(0, 16, 2), StackWrite::kOk);
  ASSERT_EQ(hog.SpillPagesHeld(), 0);

  PagedWarpStack stack(&alloc, /*num_levels=*/2);
  for (int64_t i = 0; i < 32; ++i) {
    ASSERT_EQ(stack.TrySet(1, i, static_cast<VertexId>(1000 + i)),
              StackWrite::kOk);
  }
  EXPECT_EQ(stack.SpillPagesHeld(), 2);

  // Arena still full: promotion is a no-op.
  EXPECT_EQ(stack.PromoteSpilled(), 0);
  EXPECT_EQ(stack.SpillPagesHeld(), 2);

  // The hog releases; promotion drains the spill tier and the data reads
  // back through the rewritten page tables.
  { PagedWarpStack drop = std::move(hog); }
  EXPECT_EQ(stack.PromoteSpilled(), 2);
  EXPECT_EQ(stack.SpillPagesHeld(), 0);
  EXPECT_EQ(alloc.SpillPagesInUse(), 0);
  EXPECT_EQ(alloc.SpillPromotions(), 2);
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(stack.Get(1, i), static_cast<VertexId>(1000 + i));
  }
}

}  // namespace
}  // namespace tdfs
