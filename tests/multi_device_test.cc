#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"
#include "vgpu/device.h"

namespace tdfs {
namespace {

TEST(DeviceGroupTest, RoundRobinOwnership) {
  vgpu::DeviceGroup group(4, 8);
  EXPECT_EQ(group.num_devices(), 4);
  for (int64_t e = 0; e < 100; ++e) {
    int owners = 0;
    for (int d = 0; d < 4; ++d) {
      owners += group.OwnsEdge(d, e) ? 1 : 0;
    }
    EXPECT_EQ(owners, 1) << "edge " << e;
    EXPECT_TRUE(group.OwnsEdge(static_cast<int>(e % 4), e));
  }
}

TEST(DeviceGroupTest, DeviceIdsSequential) {
  vgpu::DeviceGroup group(3, 4);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(group.device(d).device_id, d);
    EXPECT_EQ(group.device(d).num_warps, 4);
  }
}

class MultiDeviceCountTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiDeviceCountTest, CountsEqualSingleDevice) {
  Graph g = GenerateBarabasiAlbert(250, 4, 113);
  EngineConfig single = TdfsConfig();
  single.num_warps = 4;
  EngineConfig multi = single;
  multi.num_devices = GetParam();
  for (int i : {1, 3, 8}) {
    RunResult rs = RunMatching(g, Pattern(i), single);
    RunResult rm = RunMatching(g, Pattern(i), multi);
    ASSERT_TRUE(rs.status.ok());
    ASSERT_TRUE(rm.status.ok());
    EXPECT_EQ(rm.match_count, rs.match_count)
        << PatternName(i) << " on " << GetParam() << " devices";
    EXPECT_EQ(rm.per_device_ms.size(), static_cast<size_t>(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MultiDeviceCountTest,
                         ::testing::Values(2, 3, 4));

TEST(MultiDeviceTest, SimulatedParallelTimeIsMaxOfDevices) {
  RunResult r;
  r.per_device_ms = {3.0, 9.0, 5.0};
  r.match_ms = 9.0;
  EXPECT_DOUBLE_EQ(r.SimulatedParallelMs(), 9.0);
}

TEST(MultiDeviceTest, SingleDeviceUsesMatchTime) {
  RunResult r;
  r.match_ms = 4.5;
  EXPECT_DOUBLE_EQ(r.SimulatedParallelMs(), 4.5);
}

TEST(MultiDeviceTest, WorkSplitsAcrossDevices) {
  Graph g = GenerateErdosRenyi(200, 900, 127);
  EngineConfig multi = TdfsConfig();
  multi.num_devices = 4;
  RunResult r = RunMatching(g, Pattern(2), multi);
  ASSERT_TRUE(r.status.ok());
  // Every device scanned its own quarter of directed edges.
  EXPECT_EQ(r.counters.edges_scanned, g.NumDirectedEdges());
}

TEST(MultiDeviceTest, LabeledMultiDevice) {
  Graph g = GenerateErdosRenyi(200, 900, 131);
  g.AssignUniformLabels(4, 3);
  EngineConfig single = TdfsConfig();
  EngineConfig multi = single;
  multi.num_devices = 2;
  RunResult rs = RunMatching(g, Pattern(12), single);
  RunResult rm = RunMatching(g, Pattern(12), multi);
  ASSERT_TRUE(rs.status.ok());
  ASSERT_TRUE(rm.status.ok());
  EXPECT_EQ(rm.match_count, rs.match_count);
}

}  // namespace
}  // namespace tdfs
