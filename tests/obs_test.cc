// Observability subsystem tests: ring/histogram mechanics, the golden
// schema of the Chrome-trace and RunResult JSON exports, and the
// tracing-off overhead regression (instrumented engines must behave
// identically to seed when no session is attached).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "core/matcher.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

using obs::JsonValue;
using obs::TraceEvent;

// ---------------------------------------------------------------------------
// Mechanics

TEST(TraceRingTest, RetainsNewestAndCountsDrops) {
  obs::TraceRing ring(4);
  for (int64_t i = 0; i < 10; ++i) {
    ring.Push(i, TraceEvent::kAdopt, i * 100);
  }
  EXPECT_EQ(ring.Size(), 4);
  EXPECT_EQ(ring.Dropped(), 6);
  for (int64_t i = 0; i < ring.Size(); ++i) {
    EXPECT_EQ(ring.At(i).ts, 6 + i);  // oldest retained first
    EXPECT_EQ(ring.At(i).arg, (6 + i) * 100);
  }
}

TEST(HistogramTest, BucketsSumAndPercentiles) {
  obs::Histogram h;
  for (int64_t v : {0, 1, 1, 3, 8, 1000}) {
    h.Observe(v);
  }
  EXPECT_EQ(h.Count(), 6);
  EXPECT_EQ(h.Sum(), 1013);
  EXPECT_EQ(h.Max(), 1000);
  EXPECT_EQ(h.BucketCount(obs::Histogram::BucketIndex(0)), 1);
  EXPECT_EQ(h.BucketCount(obs::Histogram::BucketIndex(1)), 2);
  EXPECT_LE(h.ApproxPercentile(0.5), 3);
  EXPECT_GE(h.ApproxPercentile(0.99), 512);  // bucket lower bound of 1000
}

TEST(MetricsRegistryTest, HandlesAreStableAndDeduplicated) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.Empty());
  obs::Counter* a = registry.GetCounter("x");
  obs::Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetHistogram("x"), nullptr);  // separate namespace
  EXPECT_FALSE(registry.Empty());
}

TEST(MetricsRegistryTest, NullHandlesAreSafeNoOps) {
  obs::Add(nullptr, 5);
  obs::Observe(nullptr, 5);  // must not crash
  obs::WarpTracer disabled;
  EXPECT_FALSE(disabled.enabled());
  disabled.Event(TraceEvent::kAdopt, 1);  // must not crash
}

// ---------------------------------------------------------------------------
// Golden schema: Chrome-trace export

// Runs a small job that exercises splits, the queue, and paged stacks.
RunResult TracedRun(obs::TraceSession* trace, int num_warps = 4) {
  Graph g = GenerateErdosRenyi(300, 1800, 13);
  EngineConfig config = TdfsConfig();
  config.num_warps = num_warps;
  config.trace = trace;
  // Virtual-clock timeout so splits fire deterministically.
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 500;
  RunResult r = RunMatching(g, Pattern(4), config);
  EXPECT_TRUE(r.status.ok()) << r.status;
  return r;
}

TEST(TraceExportTest, ChromeTraceMatchesGoldenSchema) {
  obs::TraceSession trace;
  RunResult r = TracedRun(&trace, /*num_warps=*/4);
  EXPECT_GT(r.counters.timeout_splits, 0);

  std::ostringstream oss;
  trace.WriteChromeTrace(oss);
  Result<JsonValue> parsed = JsonValue::Parse(oss.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("displayTimeUnit")->str(), "ms");
  ASSERT_TRUE(root.Has("otherData"));
  EXPECT_TRUE(root.Find("otherData")->Has("dropped_records"));

  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::map<std::pair<int64_t, int64_t>, int64_t> last_ts;
  std::map<std::pair<int64_t, int64_t>, int64_t> span_depth;
  std::set<std::pair<int64_t, int64_t>> event_tracks;
  std::set<std::string> thread_names;
  std::set<std::string> event_names;
  std::set<std::string> span_names;
  for (const JsonValue& ev : events->array()) {
    ASSERT_TRUE(ev.is_object());
    ASSERT_TRUE(ev.Has("name"));
    ASSERT_TRUE(ev.Has("ph"));
    ASSERT_TRUE(ev.Has("pid"));
    const std::string ph = ev.Find("ph")->str();
    if (ph == "M") {
      if (ev.Find("name")->str() == "thread_name") {
        thread_names.insert(ev.Find("args")->Find("name")->str());
      }
      continue;
    }
    // Warp rings export instants; the span ledger exports balanced
    // duration (B/E) pairs. Nothing else is allowed.
    ASSERT_TRUE(ph == "i" || ph == "B" || ph == "E") << ph;
    ASSERT_TRUE(ev.Has("tid"));
    ASSERT_TRUE(ev.Has("ts"));
    const std::pair<int64_t, int64_t> track = {ev.Find("pid")->Int(),
                                               ev.Find("tid")->Int()};
    if (ph == "i") {
      event_names.insert(ev.Find("name")->str());
    } else {
      // Spans live on their own process row, never interleaved with
      // warp-ring instants.
      EXPECT_EQ(track.first, obs::kSpanExportPid);
      span_names.insert(ev.Find("name")->str());
      int64_t& depth = span_depth[track];
      depth += ph == "B" ? 1 : -1;
      EXPECT_GE(depth, 0);  // E never precedes its B on a row
    }
    const int64_t ts = ev.Find("ts")->Int();
    auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      // Monotone per track: the warp virtual clock never runs backwards,
      // and span rows are serialized B/E streams.
      EXPECT_GE(ts, it->second);
    }
    last_ts[track] = ts;
    event_tracks.insert(track);
  }
  for (const auto& [track, depth] : span_depth) {
    EXPECT_EQ(depth, 0) << "unbalanced span row tid=" << track.second;
  }
  // A direct (service-less) run still spans its engine execution.
  EXPECT_TRUE(span_names.count("engine_run"));

  // One track per warp, each named and carrying events, plus the kernel
  // launch track.
  for (int w = 0; w < 4; ++w) {
    EXPECT_TRUE(thread_names.count("warp" + std::to_string(w)));
  }
  EXPECT_TRUE(thread_names.count("kernel"));
  EXPECT_GE(static_cast<int64_t>(event_tracks.size()), 4);
  // The lifecycle events the acceptance bar names.
  for (const char* name :
       {"adopt", "split", "enqueue", "dequeue", "page_acquire",
        "page_release", "kernel_launch"}) {
    EXPECT_TRUE(event_names.count(name)) << name;
  }
}

TEST(TraceExportTest, DropCounterSurfacesInExport) {
  obs::TraceOptions options;
  options.ring_capacity = 8;  // force overwrites
  obs::TraceSession trace(options);
  TracedRun(&trace);
  EXPECT_GT(trace.TotalDropped(), 0);
  std::ostringstream oss;
  trace.WriteChromeTrace(oss);
  Result<JsonValue> parsed = JsonValue::Parse(oss.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_GT(
      parsed.value().Find("otherData")->Find("dropped_records")->Int(), 0);
}

// ---------------------------------------------------------------------------
// Golden schema: RunResult::ToJson

TEST(RunJsonTest, EveryCounterFieldRoundTrips) {
  obs::TraceSession trace;
  RunResult r = TracedRun(&trace);
  Result<JsonValue> parsed =
      JsonValue::Parse(r.ToJsonString(trace.metrics()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = parsed.value();
  for (const char* key :
       {"status", "match_count", "total_ms", "match_ms",
        "simulated_gpu_ms", "simulated_parallel_ms", "per_device_ms",
        "counters", "metrics"}) {
    EXPECT_TRUE(root.Has(key)) << key;
  }
  EXPECT_EQ(root.Find("status")->Find("ok")->bool_value(), true);
  EXPECT_EQ(root.Find("match_count")->Uint(), r.match_count);

  const JsonValue* counters = root.Find("counters");
  ASSERT_TRUE(counters->is_object());
  // The X-macro guarantees the writer covers the struct; this checks the
  // document, and spot-checks values against the in-memory counters.
#define TDFS_FIELD_EXPECT(name) EXPECT_TRUE(counters->Has(#name)) << #name;
  TDFS_RUN_COUNTER_FIELDS(TDFS_FIELD_EXPECT)
#undef TDFS_FIELD_EXPECT
  EXPECT_EQ(counters->Find("work_units")->Uint(), r.counters.work_units);
  EXPECT_EQ(counters->Find("timeout_splits")->Int(),
            r.counters.timeout_splits);
  EXPECT_EQ(counters->Find("stack_overflow")->bool_value(),
            r.counters.stack_overflow);

  const JsonValue* metrics = root.Find("metrics");
  ASSERT_TRUE(metrics->Has("histograms"));
  const JsonValue* h = metrics->Find("histograms");
  for (const char* name :
       {"dfs.task_work_units", "dfs.split_depth", "dfs.intersection_size",
        "mem.page_pool_occupancy", "queue.occupancy_tasks"}) {
    ASSERT_TRUE(h->Has(name)) << name;
    EXPECT_GT(h->Find(name)->Find("count")->Int(), 0) << name;
  }
}

TEST(RunJsonTest, FailedRunStillExports) {
  RunResult r;
  r.status = Status::DeadlineExceeded("budget exhausted");
  r.counters.work_units = 7;
  Result<JsonValue> parsed = JsonValue::Parse(r.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root.Find("status")->Find("ok")->bool_value(), false);
  EXPECT_EQ(root.Find("status")->Find("code")->str(), "DeadlineExceeded");
  EXPECT_EQ(root.Find("counters")->Find("work_units")->Uint(), 7u);
  EXPECT_FALSE(root.Has("metrics"));
}

// ---------------------------------------------------------------------------
// Overhead regression: tracing off must not change the computation.

TEST(TracingOffTest, IdenticalWorkAndCountsToUntracedRun) {
  Graph g = GenerateBarabasiAlbert(250, 4, 17);
  EngineConfig config = TdfsConfig();
  config.num_warps = 4;
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 800;

  RunResult off = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(off.status.ok());

  obs::TraceSession trace;
  EngineConfig traced = config;
  traced.trace = &trace;
  RunResult on = RunMatching(g, Pattern(2), traced);
  ASSERT_TRUE(on.status.ok());

  // The deterministic virtual clock makes the whole schedule replayable:
  // tracing may observe the run but must not perturb it.
  EXPECT_EQ(off.match_count, on.match_count);
  EXPECT_EQ(off.counters.work_units, on.counters.work_units);
  EXPECT_EQ(off.counters.timeout_splits, on.counters.timeout_splits);
  EXPECT_EQ(off.counters.tasks_enqueued, on.counters.tasks_enqueued);

  // And the untraced run records nothing anywhere.
  RunResult again = RunMatching(g, Pattern(2), config);
  EXPECT_EQ(again.counters.work_units, off.counters.work_units);
}

TEST(TracingOffTest, BfsAndRefEnginesUnperturbed) {
  Graph g = GenerateErdosRenyi(200, 1000, 23);
  EngineConfig config = PbeConfig();
  config.num_warps = 4;
  RunResult off = RunMatchingBfs(g, Pattern(1), config);
  obs::TraceSession trace;
  EngineConfig traced = config;
  traced.trace = &trace;
  RunResult on = RunMatchingBfs(g, Pattern(1), traced);
  ASSERT_TRUE(off.status.ok());
  ASSERT_TRUE(on.status.ok());
  EXPECT_EQ(off.match_count, on.match_count);
  EXPECT_EQ(off.counters.work_units, on.counters.work_units);

  EngineConfig ref = TdfsConfig();
  RunResult ref_off = RunMatchingRef(g, Pattern(1), ref);
  ref.trace = &trace;
  RunResult ref_on = RunMatchingRef(g, Pattern(1), ref);
  EXPECT_EQ(ref_off.match_count, ref_on.match_count);
}

}  // namespace
}  // namespace tdfs
