#include "mem/page_allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace tdfs {
namespace {

TEST(PageAllocatorTest, Construction) {
  PageAllocator alloc(16);
  EXPECT_EQ(alloc.num_pages(), 16);
  EXPECT_EQ(alloc.page_bytes(), PageAllocator::kDefaultPageBytes);
  EXPECT_EQ(alloc.page_ints(), 2048);
  EXPECT_EQ(alloc.PagesInUse(), 0);
}

TEST(PageAllocatorTest, AllocReturnsDistinctPages) {
  PageAllocator alloc(8);
  std::set<PageId> pages;
  for (int i = 0; i < 8; ++i) {
    PageId p = alloc.AllocPage();
    ASSERT_NE(p, kNullPage);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
    EXPECT_TRUE(pages.insert(p).second) << "duplicate page " << p;
  }
  EXPECT_EQ(alloc.PagesInUse(), 8);
}

TEST(PageAllocatorTest, ExhaustionReturnsNull) {
  PageAllocator alloc(2);
  EXPECT_NE(alloc.AllocPage(), kNullPage);
  EXPECT_NE(alloc.AllocPage(), kNullPage);
  EXPECT_EQ(alloc.AllocPage(), kNullPage);
  EXPECT_EQ(alloc.AllocPage(), kNullPage);  // stays exhausted
}

TEST(PageAllocatorTest, FreeMakesPageReusable) {
  PageAllocator alloc(1);
  PageId p = alloc.AllocPage();
  ASSERT_NE(p, kNullPage);
  EXPECT_EQ(alloc.AllocPage(), kNullPage);
  alloc.FreePage(p);
  EXPECT_EQ(alloc.PagesInUse(), 0);
  EXPECT_EQ(alloc.AllocPage(), p);
}

TEST(PageAllocatorTest, PageDataIsWritableAndDistinct) {
  PageAllocator alloc(4, 64);  // 16 ints per page
  PageId a = alloc.AllocPage();
  PageId b = alloc.AllocPage();
  for (int i = 0; i < 16; ++i) {
    alloc.PageData(a)[i] = 100 + i;
    alloc.PageData(b)[i] = 200 + i;
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(alloc.PageData(a)[i], 100 + i);
    EXPECT_EQ(alloc.PageData(b)[i], 200 + i);
  }
}

TEST(PageAllocatorTest, StatsTrackPeakAndTotal) {
  PageAllocator alloc(4);
  PageId a = alloc.AllocPage();
  PageId b = alloc.AllocPage();
  alloc.FreePage(a);
  PageId c = alloc.AllocPage();
  EXPECT_EQ(alloc.PagesInUse(), 2);
  EXPECT_EQ(alloc.PeakPagesInUse(), 2);
  EXPECT_EQ(alloc.TotalAllocs(), 3);
  alloc.FreePage(b);
  alloc.FreePage(c);
  EXPECT_EQ(alloc.PeakPagesInUse(), 2);  // peak persists
  alloc.ResetStats();
  EXPECT_EQ(alloc.TotalAllocs(), 0);
  EXPECT_EQ(alloc.PeakPagesInUse(), 0);
}

TEST(PageAllocatorTest, CustomPageSize) {
  PageAllocator alloc(2, 1024);
  EXPECT_EQ(alloc.page_bytes(), 1024);
  EXPECT_EQ(alloc.page_ints(), 256);
}

TEST(PageAllocatorTest, ConcurrentAllocFreeConservesPages) {
  PageAllocator alloc(64);
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&alloc, &failed] {
      std::vector<PageId> held;
      for (int i = 0; i < kIters; ++i) {
        if (held.size() < 4) {
          PageId p = alloc.AllocPage();
          if (p != kNullPage) {
            // Stamp the page; a double-allocated page would be stomped by
            // its other owner.
            alloc.PageData(p)[0] = p;
            held.push_back(p);
          }
        } else {
          PageId p = held.back();
          held.pop_back();
          if (alloc.PageData(p)[0] != p) {
            failed.store(true);
          }
          alloc.FreePage(p);
        }
      }
      for (PageId p : held) {
        if (alloc.PageData(p)[0] != p) {
          failed.store(true);
        }
        alloc.FreePage(p);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(failed.load()) << "page double-allocation detected";
  EXPECT_EQ(alloc.PagesInUse(), 0);
  // All pages recoverable afterwards.
  int recovered = 0;
  while (alloc.AllocPage() != kNullPage) {
    ++recovered;
  }
  EXPECT_EQ(recovered, 64);
}

TEST(PageAllocatorDeathTest, BadPageSizeAborts) {
  EXPECT_DEATH(PageAllocator(4, 10), "multiple of 4");
  EXPECT_DEATH(PageAllocator(0), "TDFS_CHECK");
}

TEST(PageAllocatorDeathTest, FreeOutOfRangeAborts) {
  PageAllocator alloc(4);
  EXPECT_DEATH(alloc.FreePage(99), "out of range");
  EXPECT_DEATH(alloc.FreePage(-1), "out of range");
}

TEST(PageAllocatorDeathTest, DoubleFreeAborts) {
  PageAllocator alloc(4);
  PageId p = alloc.AllocPage();
  ASSERT_NE(p, kNullPage);
  alloc.FreePage(p);
  EXPECT_DEATH(alloc.FreePage(p), "double free");
}

TEST(PageAllocatorDeathTest, FreeingNeverAllocatedPageAborts) {
  PageAllocator alloc(4);
  // Page 0 is in range but still owned by the free list.
  EXPECT_DEATH(alloc.FreePage(0), "double free");
}

TEST(PageAllocatorTest, FreeAfterReallocIsAccepted) {
  // The double-free guard must not reject the legitimate
  // alloc/free/alloc/free cycle of the same page id.
  PageAllocator alloc(1);
  for (int i = 0; i < 3; ++i) {
    PageId p = alloc.AllocPage();
    ASSERT_NE(p, kNullPage);
    alloc.FreePage(p);
  }
  EXPECT_EQ(alloc.PagesInUse(), 0);
}

}  // namespace
}  // namespace tdfs
