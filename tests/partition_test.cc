// Partitioner invariants (graph/partition.h): the shard views must be a
// disjoint re-labelling of the global graph — id maps round-trip, the
// directed-edge space splits exactly, every adjacency question a shard can
// ask resolves to the global answer through the owned / halo / remote
// tiers, and the halo holds precisely the boundary vertices under the cap.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace tdfs {
namespace {

Graph TestGraph() { return GenerateErdosRenyi(220, 1400, 501); }

std::unique_ptr<GraphPartition> Partition(const Graph& g, ShardingKind kind,
                                          int shards,
                                          int64_t halo_cap = 16) {
  PartitionSpec spec;
  spec.kind = kind;
  spec.num_shards = shards;
  spec.halo_max_degree = halo_cap;
  return GraphPartition::Build(g, spec);
}

class PartitionKindTest : public ::testing::TestWithParam<ShardingKind> {};

TEST_P(PartitionKindTest, IdMapsRoundTrip) {
  Graph g = TestGraph();
  auto part = Partition(g, GetParam(), 4);
  int64_t total_owned = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const int owner = part->Owner(v);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    const int64_t row = part->LocalRow(owner, v);
    ASSERT_GE(row, 0) << "owner does not hold v=" << v;
    EXPECT_EQ(part->GlobalRowVertex(owner, row), v);
    for (int s = 0; s < 4; ++s) {
      if (s != owner) {
        EXPECT_EQ(part->LocalRow(s, v), -1)
            << "v=" << v << " owned twice (shards " << owner << "," << s
            << ")";
      }
    }
  }
  for (int s = 0; s < 4; ++s) {
    total_owned += part->OwnedRows(s);
    EXPECT_GT(part->ResidentBytes(s), 0);
  }
  EXPECT_EQ(total_owned, g.NumVertices());
}

TEST_P(PartitionKindTest, EdgeSpaceIsDisjointUnion) {
  Graph g = TestGraph();
  auto part = Partition(g, GetParam(), 4);
  std::multiset<std::pair<VertexId, VertexId>> global;
  for (int64_t e = 0; e < g.NumDirectedEdges(); ++e) {
    global.insert({g.EdgeSource(e), g.EdgeTarget(e)});
  }
  std::multiset<std::pair<VertexId, VertexId>> sharded;
  int64_t total = 0;
  for (int s = 0; s < 4; ++s) {
    const Graph& view = part->ShardView(s);
    total += view.NumDirectedEdges();
    EXPECT_EQ(view.NumDirectedEdges(), part->OwnedDirectedEdges(s));
    for (int64_t e = 0; e < view.NumDirectedEdges(); ++e) {
      sharded.insert({view.EdgeSource(e), view.EdgeTarget(e)});
      // A shard owns exactly the edges whose source it owns.
      EXPECT_EQ(part->Owner(view.EdgeSource(e)), s);
    }
  }
  EXPECT_EQ(total, g.NumDirectedEdges());
  EXPECT_EQ(sharded, global);
}

TEST_P(PartitionKindTest, ShardAdjacencyMatchesGlobal) {
  Graph g = TestGraph();
  auto part = Partition(g, GetParam(), 3);
  for (int s = 0; s < 3; ++s) {
    const Graph& view = part->ShardView(s);
    ASSERT_TRUE(view.IsShardView());
    EXPECT_EQ(view.NumVertices(), g.NumVertices());
    EXPECT_EQ(view.MaxDegree(), g.MaxDegree());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(view.Degree(v), g.Degree(v));
      const VertexSpan expected = g.Neighbors(v);
      const VertexSpan got = view.Neighbors(v);
      ASSERT_EQ(got.size(), expected.size()) << "shard " << s << " v=" << v;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << "shard " << s << " v=" << v << " i=" << i;
      }
    }
  }
  // The sweep above touched every tier; the meters must have seen it.
  int64_t local = 0;
  int64_t halo = 0;
  int64_t remote = 0;
  for (int s = 0; s < 3; ++s) {
    local += part->Stats(s).local_rows.load();
    halo += part->Stats(s).halo_rows.load();
    remote += part->Stats(s).remote_rows.load();
  }
  EXPECT_EQ(local + halo + remote, 3 * g.NumVertices());
  EXPECT_GT(local, 0);
  part->ResetStats();
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(part->Stats(s).local_rows.load(), 0);
    EXPECT_EQ(part->Stats(s).remote_rows.load(), 0);
  }
}

TEST_P(PartitionKindTest, HaloHoldsExactlyBoundaryUnderCap) {
  Graph g = TestGraph();
  const int64_t cap = 16;
  auto part = Partition(g, GetParam(), 4, cap);
  for (int s = 0; s < 4; ++s) {
    const Graph& view = part->ShardView(s);
    // Expected halo: non-owned neighbors of owned vertices whose global
    // degree fits the cap.
    std::set<VertexId> expected;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (part->Owner(v) != s) {
        continue;
      }
      const VertexSpan row = g.Neighbors(v);
      for (size_t i = 0; i < row.size(); ++i) {
        const VertexId u = row[i];
        if (part->Owner(u) != s && g.Degree(u) <= cap) {
          expected.insert(u);
        }
      }
    }
    EXPECT_EQ(static_cast<int64_t>(expected.size()), part->HaloRows(s));
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      const bool resident = view.ShardLocalRow(u);
      const bool owned = part->Owner(u) == s;
      EXPECT_EQ(resident, owned || expected.count(u) > 0)
          << "shard " << s << " u=" << u;
    }
  }
}

TEST_P(PartitionKindTest, ZeroCapDisablesHalo) {
  Graph g = TestGraph();
  auto part = Partition(g, GetParam(), 4, /*halo_cap=*/0);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(part->HaloRows(s), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PartitionKindTest,
                         ::testing::Values(ShardingKind::kHash,
                                           ShardingKind::kGreedy),
                         [](const auto& info) {
                           return std::string(
                               ShardingKindName(info.param));
                         });

TEST(PartitionTest, GreedyBalancesDegreeLoad) {
  // Skewed degrees are exactly where greedy beats hash: the max/min
  // degree-load spread must stay within one max-degree row of even.
  Graph g = GenerateBarabasiAlbert(400, 6, 77);
  auto part = Partition(g, ShardingKind::kGreedy, 4);
  std::vector<int64_t> load(4, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    load[part->Owner(v)] += g.Degree(v);
  }
  const int64_t max_load = *std::max_element(load.begin(), load.end());
  const int64_t min_load = *std::min_element(load.begin(), load.end());
  EXPECT_LE(max_load - min_load, g.MaxDegree());
}

TEST(PartitionTest, LabeledViewsKeepGlobalLabels) {
  Graph g = GenerateErdosRenyi(150, 700, 31);
  g.AssignUniformLabels(5, 32);
  auto part = Partition(g, ShardingKind::kHash, 3);
  for (int s = 0; s < 3; ++s) {
    const Graph& view = part->ShardView(s);
    ASSERT_TRUE(view.IsLabeled());
    EXPECT_EQ(view.NumLabels(), g.NumLabels());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_EQ(view.VertexLabel(v), g.VertexLabel(v));
    }
  }
}

}  // namespace
}  // namespace tdfs
