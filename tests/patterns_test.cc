#include "query/patterns.h"

#include <gtest/gtest.h>

#include "query/automorphism.h"

namespace tdfs {
namespace {

TEST(PatternsTest, SuiteSizes) {
  EXPECT_EQ(UnlabeledPatternIndices().size(), 11u);
  EXPECT_EQ(AllPatternIndices().size(), 22u);
}

TEST(PatternsTest, VertexAndEdgeCountsMatchDesignDoc) {
  struct Expected {
    int index;
    int vertices;
    int edges;
  };
  const Expected table[] = {
      {1, 4, 5},  {2, 4, 6},  {3, 5, 6},  {4, 5, 5},
      {5, 5, 7},  {6, 5, 9},  {7, 5, 10}, {8, 6, 6},
      {9, 6, 7},  {10, 6, 9}, {11, 6, 7},
  };
  for (const Expected& e : table) {
    QueryGraph q = Pattern(e.index);
    EXPECT_EQ(q.NumVertices(), e.vertices) << PatternName(e.index);
    EXPECT_EQ(q.NumEdges(), e.edges) << PatternName(e.index);
  }
}

TEST(PatternsTest, P1HasFiveEdgesAsThePaperStates) {
  // Section IV-B: "EGSM finishes for P1 and P12 on Friendster since they
  // only have 5 edges".
  EXPECT_EQ(Pattern(1).NumEdges(), 5);
  EXPECT_EQ(Pattern(12).NumEdges(), 5);
}

TEST(PatternsTest, SixVertexPatternsAreP8ToP11) {
  for (int i : {8, 9, 10, 11}) {
    EXPECT_EQ(Pattern(i).NumVertices(), 6) << PatternName(i);
  }
}

TEST(PatternsTest, AllPatternsConnected) {
  for (int i : AllPatternIndices()) {
    EXPECT_TRUE(Pattern(i).IsConnected()) << PatternName(i);
  }
}

TEST(PatternsTest, FirstElevenUnlabeledRestLabeled) {
  for (int i = 1; i <= 11; ++i) {
    EXPECT_FALSE(Pattern(i).IsLabeled()) << PatternName(i);
  }
  for (int i = 12; i <= 22; ++i) {
    QueryGraph q = Pattern(i);
    EXPECT_TRUE(q.IsLabeled()) << PatternName(i);
    for (int u = 0; u < q.NumVertices(); ++u) {
      EXPECT_EQ(q.VertexLabel(u), u % 4) << PatternName(i);
    }
  }
}

TEST(PatternsTest, LabeledVariantsShareStructure) {
  for (int i = 1; i <= 11; ++i) {
    QueryGraph unlabeled = Pattern(i);
    QueryGraph labeled = Pattern(i + 11);
    ASSERT_EQ(unlabeled.NumVertices(), labeled.NumVertices());
    EXPECT_EQ(unlabeled.NumEdges(), labeled.NumEdges());
    for (int u = 0; u < unlabeled.NumVertices(); ++u) {
      for (int v = u + 1; v < unlabeled.NumVertices(); ++v) {
        EXPECT_EQ(unlabeled.HasEdge(u, v), labeled.HasEdge(u, v));
      }
    }
  }
}

TEST(PatternsTest, KnownAutomorphismCounts) {
  EXPECT_EQ(AutomorphismCount(Pattern(1)), 4u);    // diamond
  EXPECT_EQ(AutomorphismCount(Pattern(2)), 24u);   // 4-clique
  EXPECT_EQ(AutomorphismCount(Pattern(3)), 2u);    // house
  EXPECT_EQ(AutomorphismCount(Pattern(4)), 10u);   // pentagon
  EXPECT_EQ(AutomorphismCount(Pattern(6)), 12u);   // K5 minus edge
  EXPECT_EQ(AutomorphismCount(Pattern(7)), 120u);  // 5-clique
  EXPECT_EQ(AutomorphismCount(Pattern(8)), 12u);   // hexagon
  EXPECT_EQ(AutomorphismCount(Pattern(10)), 12u);  // prism
}

TEST(PatternsTest, LabelsReduceSymmetry) {
  // Labeling (i mod 4) breaks most automorphisms.
  for (int i = 1; i <= 11; ++i) {
    EXPECT_LE(AutomorphismCount(Pattern(i + 11)),
              AutomorphismCount(Pattern(i)))
        << PatternName(i);
  }
  EXPECT_EQ(AutomorphismCount(Pattern(13)), 1u);  // labeled 4-clique
}

TEST(PatternsTest, NameParsing) {
  EXPECT_EQ(PatternFromName("P7").ValueOrDie(), 7);
  EXPECT_EQ(PatternFromName("p22").ValueOrDie(), 22);
  EXPECT_EQ(PatternFromName("3").ValueOrDie(), 3);
  EXPECT_FALSE(PatternFromName("P0").ok());
  EXPECT_FALSE(PatternFromName("P23").ok());
  EXPECT_FALSE(PatternFromName("house").ok());
  EXPECT_FALSE(PatternFromName("").ok());
}

TEST(PatternsTest, StructureNames) {
  EXPECT_EQ(PatternStructureName(1), "diamond");
  EXPECT_EQ(PatternStructureName(8), "hexagon");
  EXPECT_EQ(PatternStructureName(12), "diamond (labeled)");
}

TEST(PatternsDeathTest, OutOfRangeIndexAborts) {
  EXPECT_DEATH(Pattern(0), "out of");
  EXPECT_DEATH(Pattern(23), "out of");
}

}  // namespace
}  // namespace tdfs
