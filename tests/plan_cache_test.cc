#include "service/plan_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "query/patterns.h"
#include "query/query_graph.h"

namespace tdfs {
namespace {

// Applies the permutation perm (new id of old vertex u is perm[u]) to a
// query graph, preserving labels.
QueryGraph Relabel(const QueryGraph& q, const std::vector<int>& perm) {
  QueryGraph out(q.NumVertices());
  for (int u = 0; u < q.NumVertices(); ++u) {
    if (q.VertexLabel(u) != kNoLabel) {
      out.SetVertexLabel(perm[u], q.VertexLabel(u));
    }
    for (int w = u + 1; w < q.NumVertices(); ++w) {
      if (q.HasEdge(u, w)) {
        out.AddEdge(perm[u], perm[w]);
      }
    }
  }
  return out;
}

TEST(CanonicalQueryKeyTest, InvariantUnderRelabeling) {
  std::mt19937 rng(7);
  for (int pattern : {1, 2, 5, 8, 11}) {
    const QueryGraph q = Pattern(pattern);
    const std::string canon = CanonicalQueryKey(q);
    std::vector<int> perm(q.NumVertices());
    for (int u = 0; u < q.NumVertices(); ++u) {
      perm[u] = u;
    }
    for (int trial = 0; trial < 10; ++trial) {
      std::shuffle(perm.begin(), perm.end(), rng);
      EXPECT_EQ(CanonicalQueryKey(Relabel(q, perm)), canon)
          << "pattern " << pattern << " trial " << trial;
    }
  }
}

TEST(CanonicalQueryKeyTest, DistinguishesNonIsomorphicQueries) {
  // Same vertex and edge counts, different structure: the 4-path vs the
  // triangle-with-pendant both have 4 vertices and 3 edges.
  QueryGraph path(4, {{0, 1}, {1, 2}, {2, 3}});
  QueryGraph pendant(4, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_NE(CanonicalQueryKey(path), CanonicalQueryKey(pendant));

  std::set<std::string> keys;
  for (int pattern : {1, 2, 3, 4, 5, 6, 7, 8}) {
    keys.insert(CanonicalQueryKey(Pattern(pattern)));
  }
  EXPECT_EQ(keys.size(), 8u) << "distinct patterns collided";
}

TEST(CanonicalQueryKeyTest, LabelsParticipate) {
  QueryGraph plain(3, {{0, 1}, {1, 2}, {2, 0}});
  QueryGraph labeled(3, {{0, 1}, {1, 2}, {2, 0}});
  labeled.SetVertexLabel(0, 4);
  EXPECT_NE(CanonicalQueryKey(plain), CanonicalQueryKey(labeled));

  // Two labelings equal up to relabeling still collide on purpose.
  QueryGraph a(3, {{0, 1}, {1, 2}, {2, 0}});
  a.SetVertexLabel(0, 4);
  QueryGraph b(3, {{0, 1}, {1, 2}, {2, 0}});
  b.SetVertexLabel(2, 4);
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

TEST(CanonicalQueryKeyTest, SymmetricWorstCasesComplete) {
  // Cliques, stars, and empty graphs maximize automorphisms — the
  // twin-skipping must keep the search tractable (this test hangs
  // without it).
  QueryGraph clique(10);
  for (int u = 0; u < 10; ++u) {
    for (int w = u + 1; w < 10; ++w) {
      clique.AddEdge(u, w);
    }
  }
  EXPECT_FALSE(CanonicalQueryKey(clique).empty());

  QueryGraph star(12);
  for (int leaf = 1; leaf < 12; ++leaf) {
    star.AddEdge(0, leaf);
  }
  EXPECT_FALSE(CanonicalQueryKey(star).empty());
}

TEST(PlanCacheKeyTest, OptionsParticipate) {
  const QueryGraph q = Pattern(2);
  PlanOptions base;
  PlanOptions no_sym = base;
  no_sym.use_symmetry_breaking = false;
  PlanOptions no_reuse = base;
  no_reuse.use_reuse = false;
  PlanOptions induced = base;
  induced.induced = true;
  const std::set<std::string> keys = {
      PlanCacheKey(q, base), PlanCacheKey(q, no_sym),
      PlanCacheKey(q, no_reuse), PlanCacheKey(q, induced)};
  EXPECT_EQ(keys.size(), 4u) << "PlanOptions knobs must be part of the key";
}

TEST(PlanCacheKeyTest, ForcedOrderKeyedByConcreteVertices) {
  const QueryGraph q(3, {{0, 1}, {1, 2}, {2, 0}});
  PlanOptions a;
  a.forced_order = {0, 1, 2};
  PlanOptions b;
  b.forced_order = {2, 1, 0};
  EXPECT_NE(PlanCacheKey(q, a), PlanCacheKey(q, b));
  EXPECT_NE(PlanCacheKey(q, a), PlanCacheKey(q, PlanOptions{}));
}

TEST(PlanCacheKeyTest, DeltaRanksGetDistinctKeys) {
  const QueryGraph q = Pattern(2);
  PlanOptions base;
  base.use_symmetry_breaking = false;
  std::set<std::string> keys = {PlanCacheKey(q, base)};
  for (int rank = 0; rank < q.NumEdges(); ++rank) {
    PlanOptions delta = base;
    delta.delta_edge_rank = rank;
    keys.insert(PlanCacheKey(q, delta));
  }
  // Base key plus one per rank: delta plans must never collide with the
  // normal plan or with each other (their seeding semantics differ).
  EXPECT_EQ(keys.size(), static_cast<size_t>(q.NumEdges()) + 1);
}

TEST(PlanCacheTest, DeltaPlansCacheAndServeByRank) {
  PlanCache cache(16);
  const QueryGraph q = Pattern(1);
  PlanOptions options;
  options.use_symmetry_breaking = false;
  options.delta_edge_rank = 2;
  auto plan = cache.Get(q, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value()->delta_edge_rank, 2);
  auto again = cache.Get(q, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(plan.value().get(), again.value().get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(PlanCacheTest, IsomorphicQueriesHitTheSameEntry) {
  PlanCache cache(8);
  const QueryGraph q = Pattern(5);
  auto first = cache.Get(q, PlanOptions{});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 1);

  // Every relabeled variant must hit the entry compiled for `q`.
  std::mt19937 rng(13);
  std::vector<int> perm(q.NumVertices());
  for (int u = 0; u < q.NumVertices(); ++u) {
    perm[u] = u;
  }
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(perm.begin(), perm.end(), rng);
    auto again = cache.Get(Relabel(q, perm), PlanOptions{});
    ASSERT_TRUE(again.ok());
  }
  EXPECT_EQ(cache.hits(), 5);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(PlanCacheTest, LruEvictsOldestEntry) {
  PlanCache cache(2);
  auto p1 = cache.Get(Pattern(1), PlanOptions{});
  auto p2 = cache.Get(Pattern(2), PlanOptions{});
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  // Touch P1 so P2 becomes the LRU victim.
  ASSERT_TRUE(cache.Get(Pattern(1), PlanOptions{}).ok());
  ASSERT_TRUE(cache.Get(Pattern(5), PlanOptions{}).ok());  // evicts P2
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2);
  // P1 still cached; P2 must recompile.
  ASSERT_TRUE(cache.Get(Pattern(1), PlanOptions{}).ok());
  const int64_t misses_before = cache.misses();
  ASSERT_TRUE(cache.Get(Pattern(2), PlanOptions{}).ok());
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(PlanCacheTest, EvictedPlanStaysAliveForBorrowers) {
  PlanCache cache(1);
  auto p1 = cache.Get(Pattern(1), PlanOptions{});
  ASSERT_TRUE(p1.ok());
  std::shared_ptr<const MatchPlan> borrowed = p1.value();
  ASSERT_TRUE(cache.Get(Pattern(2), PlanOptions{}).ok());  // evicts P1
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_GT(borrowed->order.size(), 0u);  // still usable after eviction
}

TEST(PlanCacheTest, ConcurrentGetsAreSafe) {
  PlanCache cache(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 50; ++i) {
        const int pattern = 1 + (t + i) % 3;
        auto plan = cache.Get(Pattern(pattern), PlanOptions{});
        ASSERT_TRUE(plan.ok());
        EXPECT_GT(plan.value()->order.size(), 0u);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(cache.hits() + cache.misses(), 4 * 50);
  EXPECT_LE(cache.size(), 4);
}

TEST(PlanCacheTest, MetricsMirrorCounters) {
  obs::MetricsRegistry metrics;
  PlanCache cache(4);
  cache.AttachMetrics(&metrics);
  ASSERT_TRUE(cache.Get(Pattern(1), PlanOptions{}).ok());
  ASSERT_TRUE(cache.Get(Pattern(1), PlanOptions{}).ok());
  EXPECT_EQ(metrics.GetCounter("service.plan_cache_misses")->Value(), 1);
  EXPECT_EQ(metrics.GetCounter("service.plan_cache_hits")->Value(), 1);
}

}  // namespace
}  // namespace tdfs
