#include "query/plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

MatchPlan Compile(const QueryGraph& q, PlanOptions opts = PlanOptions{}) {
  auto plan = CompilePlan(q, opts);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::move(plan).value();
}

TEST(PlanTest, OrderIsAPermutation) {
  for (int i : AllPatternIndices()) {
    QueryGraph q = Pattern(i);
    MatchPlan plan = Compile(q);
    std::set<int> seen(plan.order.begin(), plan.order.end());
    EXPECT_EQ(static_cast<int>(seen.size()), q.NumVertices())
        << PatternName(i);
    EXPECT_EQ(plan.num_vertices, q.NumVertices());
  }
}

TEST(PlanTest, FirstVertexHasMaxDegree) {
  for (int i : UnlabeledPatternIndices()) {
    QueryGraph q = Pattern(i);
    MatchPlan plan = Compile(q);
    int max_degree = 0;
    for (int u = 0; u < q.NumVertices(); ++u) {
      max_degree = std::max(max_degree, q.Degree(u));
    }
    EXPECT_EQ(q.Degree(plan.order[0]), max_degree) << PatternName(i);
  }
}

TEST(PlanTest, EveryPositionAfterFirstHasBackwardNeighbors) {
  for (int i : AllPatternIndices()) {
    MatchPlan plan = Compile(Pattern(i));
    for (int pos = 1; pos < plan.num_vertices; ++pos) {
      EXPECT_FALSE(plan.backward[pos].empty())
          << PatternName(i) << " pos " << pos;
      for (int b : plan.backward[pos]) {
        EXPECT_LT(b, pos);
        EXPECT_TRUE(Pattern(i).HasEdge(plan.order[pos], plan.order[b]));
      }
    }
  }
}

TEST(PlanTest, BackwardListsComplete) {
  // backward[pos] contains *every* earlier adjacent position.
  for (int i : AllPatternIndices()) {
    QueryGraph q = Pattern(i);
    MatchPlan plan = Compile(q);
    for (int pos = 1; pos < plan.num_vertices; ++pos) {
      int expected = 0;
      for (int j = 0; j < pos; ++j) {
        expected += q.HasEdge(plan.order[pos], plan.order[j]) ? 1 : 0;
      }
      EXPECT_EQ(static_cast<int>(plan.backward[pos].size()), expected);
    }
  }
}

TEST(PlanTest, MinDegreeAndLabelsFollowOrder) {
  QueryGraph q = Pattern(14);  // labeled house
  MatchPlan plan = Compile(q);
  for (int pos = 0; pos < plan.num_vertices; ++pos) {
    EXPECT_EQ(plan.min_degree[pos], q.Degree(plan.order[pos]));
    EXPECT_EQ(plan.label_filter[pos], q.VertexLabel(plan.order[pos]));
  }
}

TEST(PlanTest, ReuseSourceIsSubsetWithEqualLabel) {
  for (int i : AllPatternIndices()) {
    MatchPlan plan = Compile(Pattern(i));
    for (int pos = 0; pos < plan.num_vertices; ++pos) {
      const int src = plan.reuse_source[pos];
      if (src < 0) {
        EXPECT_EQ(plan.reuse_rest[pos], plan.backward[pos]);
        continue;
      }
      EXPECT_GE(src, 2);
      EXPECT_LT(src, pos);
      EXPECT_EQ(plan.label_filter[src], plan.label_filter[pos]);
      EXPECT_TRUE(std::includes(
          plan.backward[pos].begin(), plan.backward[pos].end(),
          plan.backward[src].begin(), plan.backward[src].end()));
      // rest ∪ backward[src] == backward[pos], disjointly.
      std::vector<int> merged = plan.reuse_rest[pos];
      merged.insert(merged.end(), plan.backward[src].begin(),
                    plan.backward[src].end());
      std::sort(merged.begin(), merged.end());
      EXPECT_EQ(merged, plan.backward[pos]);
    }
  }
}

TEST(PlanTest, CliquePlansEnableReuse) {
  // In a clique, backward sets are nested: B(pos j) ⊃ B(pos i) never holds
  // (each later position has strictly more backward neighbors), but the
  // subset direction B(pos i) ⊂ B(pos j) for i < j always does, so every
  // position >= 3 should find a reuse source.
  MatchPlan plan = Compile(Pattern(7));  // 5-clique
  for (int pos = 3; pos < plan.num_vertices; ++pos) {
    EXPECT_GE(plan.reuse_source[pos], 2) << "pos " << pos;
  }
}

TEST(PlanTest, ReuseDisabledByOption) {
  PlanOptions opts;
  opts.use_reuse = false;
  MatchPlan plan = Compile(Pattern(7), opts);
  for (int pos = 0; pos < plan.num_vertices; ++pos) {
    EXPECT_EQ(plan.reuse_source[pos], -1);
  }
}

TEST(PlanTest, SymmetryBreakingDisabledByOption) {
  PlanOptions opts;
  opts.use_symmetry_breaking = false;
  MatchPlan plan = Compile(Pattern(2), opts);
  EXPECT_EQ(plan.automorphism_count, 1u);
  for (int pos = 0; pos < plan.num_vertices; ++pos) {
    EXPECT_TRUE(plan.smaller_than[pos].empty());
    EXPECT_TRUE(plan.greater_than[pos].empty());
  }
}

TEST(PlanTest, RestrictionsReferEarlierPositions) {
  for (int i : AllPatternIndices()) {
    MatchPlan plan = Compile(Pattern(i));
    for (int pos = 0; pos < plan.num_vertices; ++pos) {
      for (int j : plan.smaller_than[pos]) {
        EXPECT_LT(j, pos);
      }
      for (int j : plan.greater_than[pos]) {
        EXPECT_LT(j, pos);
      }
    }
  }
}

TEST(PlanTest, CliqueRecordsAutomorphismCount) {
  MatchPlan plan = Compile(Pattern(2));
  EXPECT_EQ(plan.automorphism_count, 24u);
}

TEST(PlanTest, ForcedOrderRespected) {
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  PlanOptions opts;
  opts.forced_order = {2, 0, 1};
  MatchPlan plan = Compile(triangle, opts);
  EXPECT_EQ(plan.order, (std::vector<int>{2, 0, 1}));
}

TEST(PlanTest, ForcedOrderValidation) {
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  PlanOptions opts;
  opts.forced_order = {0, 0, 1};
  EXPECT_FALSE(CompilePlan(triangle, opts).ok());
  opts.forced_order = {0, 1};
  EXPECT_FALSE(CompilePlan(triangle, opts).ok());
  opts.forced_order = {0, 1, 5};
  EXPECT_FALSE(CompilePlan(triangle, opts).ok());
}

TEST(PlanTest, DisconnectedForcedOrderRejected) {
  // Path 0-1-2-3 with order that visits 3 before its neighbor 2.
  QueryGraph path(4, {{0, 1}, {1, 2}, {2, 3}});
  PlanOptions opts;
  opts.forced_order = {0, 1, 3, 2};
  Result<MatchPlan> r = CompilePlan(path, opts);
  ASSERT_FALSE(r.ok());
  // The prefix must stay connected so every extension has at least one
  // backward neighbor to intersect against; a disconnected prefix would
  // make the engines enumerate a cross product. Regression: pin the
  // status code so this surfaces as a client error, not a crash or a
  // silently wrong plan.
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Path 0-1-2 forced as {0, 2, 1}: position 1 (vertex 2) has no edge to
  // the prefix {0}.
  QueryGraph short_path(3, {{0, 1}, {1, 2}});
  PlanOptions opts2;
  opts2.forced_order = {0, 2, 1};
  Result<MatchPlan> r2 = CompilePlan(short_path, opts2);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanTest, DisconnectedQueryRejected) {
  QueryGraph q(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(CompilePlan(q).ok());
}

TEST(PlanTest, SingleVertexQueryRejected) {
  QueryGraph q(1);
  EXPECT_FALSE(CompilePlan(q).ok());
}

TEST(PlanTest, ToStringDumpsOrder) {
  MatchPlan plan = Compile(Pattern(1));
  EXPECT_NE(plan.ToString().find("order="), std::string::npos);
}

TEST(ConsumeChecksTest, InjectivityRejectsMatchedVertices) {
  Graph g = GenerateErdosRenyi(10, 20, 1);
  MatchPlan plan = Compile(Pattern(2));
  VertexId match[4] = {3, 5, -1, -1};
  EXPECT_FALSE(PassesConsumeChecks(plan, g, match, 2, 3, false));
  EXPECT_FALSE(PassesConsumeChecks(plan, g, match, 2, 5, false));
}

TEST(ConsumeChecksTest, DegreeFilterToggles) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  Graph g = builder.Build();
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  PlanOptions opts;
  opts.use_symmetry_breaking = false;
  MatchPlan plan = Compile(triangle, opts);
  VertexId match[3] = {3, 2, -1};
  // Vertex 4 has degree 1 < 2 = triangle degree: filtered only when the
  // degree filter is on.
  EXPECT_FALSE(PassesConsumeChecks(plan, g, match, 2, 4, true));
  EXPECT_TRUE(PassesConsumeChecks(plan, g, match, 2, 4, false));
}

TEST(EdgeFilterTest, RejectsSelfPairsAndAppliesRestrictions) {
  Graph g = GenerateErdosRenyi(20, 60, 2);
  MatchPlan plan = Compile(Pattern(2));  // clique: total order restriction
  EXPECT_FALSE(PassesEdgeFilter(plan, g, 4, 4));
  // For a clique plan there must be an orientation restriction between the
  // first two positions: exactly one of (2,7) / (7,2) passes.
  const bool fwd = PassesEdgeFilter(plan, g, 2, 7, false);
  const bool bwd = PassesEdgeFilter(plan, g, 7, 2, false);
  EXPECT_NE(fwd, bwd);
}

}  // namespace
}  // namespace tdfs
