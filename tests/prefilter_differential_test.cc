// The prefiltering exactness sweep: every engine x intersect mode x
// planner must produce bit-identical match counts with prefiltering on
// (kLDF and kNeighborhood) as the unfiltered reference oracle, across
// unlabeled, uniformly labeled, and Zipf-labeled graphs. This is the
// contract that lets the candidate-induced CSR be a pure optimization.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/hybrid_engine.h"
#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

struct GraphCase {
  const char* name;
  Graph (*make)();
};

Graph Unlabeled() { return GenerateErdosRenyi(130, 520, 2001); }
Graph UniformLabeled() {
  Graph g = GenerateErdosRenyi(130, 650, 2002);
  g.AssignUniformLabels(4, 2003);
  return g;
}
Graph ZipfLabeled() {
  Graph g = GenerateBarabasiAlbert(170, 3, 2004);
  g.AssignZipfLabels(8, 1.5, 2005);
  return g;
}

enum class EngineUnderTest { kDfs, kBfs, kHybrid };

struct EngineCase {
  const char* name;
  EngineUnderTest engine;
  EngineConfig (*make)();
};

EngineConfig CfgTdfsGreedyAuto() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  return c;
}
EngineConfig CfgTdfsCostScalar() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.planner = PlannerKind::kCost;
  c.intersect = IntersectMode::kScalar;
  c.stack = StackKind::kArrayMaxDegree;
  return c;
}
EngineConfig CfgHalfStealSimd() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.steal = StealStrategy::kHalfSteal;
  c.chunk_size = 64;
  c.intersect = IntersectMode::kSimd;
  return c;
}
EngineConfig CfgNewKernelCost() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.steal = StealStrategy::kNewKernel;
  c.newkernel_fanout_threshold = 8;
  c.newkernel_child_warps = 2;
  c.newkernel_launch_overhead_ns = 0;
  c.planner = PlannerKind::kCost;
  return c;
}
EngineConfig CfgStmatch() {
  EngineConfig c = StmatchConfig();
  c.num_warps = 3;
  return c;
}
EngineConfig CfgTwoDevices() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 2;
  c.num_devices = 2;
  return c;
}
EngineConfig CfgBfs() {
  EngineConfig c = PbeConfig();
  c.num_warps = 3;
  c.bfs_memory_budget_bytes = 1 << 16;
  return c;
}
EngineConfig CfgHybridCost() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  c.planner = PlannerKind::kCost;
  return c;
}

using SweepParam = std::tuple<GraphCase, EngineCase, PrefilterKind, int>;

class PrefilterDifferentialTest
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PrefilterDifferentialTest, FilteredCountEqualsUnfilteredOracle) {
  const auto& [graph_case, engine_case, kind, pattern_index] = GetParam();
  Graph g = graph_case.make();
  QueryGraph q = Pattern(pattern_index);
  if (q.IsLabeled() && !g.IsLabeled()) {
    GTEST_SKIP() << "labeled query on unlabeled graph has no matches";
  }
  EngineConfig config = engine_case.make();
  RunResult oracle = RunMatchingRef(g, q, config);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status;
  config.prefilter = kind;
  RunResult r;
  switch (engine_case.engine) {
    case EngineUnderTest::kDfs:
      r = RunMatching(g, q, config);
      break;
    case EngineUnderTest::kBfs:
      r = RunMatchingBfs(g, q, config);
      break;
    case EngineUnderTest::kHybrid:
      r = RunMatchingHybrid(g, q, config);
      break;
  }
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, oracle.match_count)
      << graph_case.name << " / " << engine_case.name << " / "
      << PrefilterKindName(kind) << " / " << PatternName(pattern_index);
  // Prefiltering actually engaged (stats were stamped).
  EXPECT_EQ(r.counters.prefilter_original_vertices, g.NumVertices());
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& [graph_case, engine_case, kind, pattern_index] = info.param;
  return std::string(graph_case.name) + "_" + engine_case.name + "_" +
         PrefilterKindName(kind) + "_" + PatternName(pattern_index);
}

INSTANTIATE_TEST_SUITE_P(
    UnlabeledSweep, PrefilterDifferentialTest,
    ::testing::Combine(
        ::testing::Values(GraphCase{"er", Unlabeled}),
        ::testing::Values(
            EngineCase{"tdfs", EngineUnderTest::kDfs, CfgTdfsGreedyAuto},
            EngineCase{"cost_scalar", EngineUnderTest::kDfs,
                       CfgTdfsCostScalar},
            EngineCase{"halfsteal_simd", EngineUnderTest::kDfs,
                       CfgHalfStealSimd},
            EngineCase{"newkernel_cost", EngineUnderTest::kDfs,
                       CfgNewKernelCost},
            EngineCase{"stmatch", EngineUnderTest::kDfs, CfgStmatch},
            EngineCase{"twodev", EngineUnderTest::kDfs, CfgTwoDevices},
            EngineCase{"bfs", EngineUnderTest::kBfs, CfgBfs},
            EngineCase{"hybrid_cost", EngineUnderTest::kHybrid,
                       CfgHybridCost}),
        ::testing::Values(PrefilterKind::kLDF, PrefilterKind::kNeighborhood),
        ::testing::Values(1, 4, 7, 10)),
    SweepName);

INSTANTIATE_TEST_SUITE_P(
    LabeledSweep, PrefilterDifferentialTest,
    ::testing::Combine(
        ::testing::Values(GraphCase{"uniform", UniformLabeled},
                          GraphCase{"zipf", ZipfLabeled}),
        ::testing::Values(
            EngineCase{"tdfs", EngineUnderTest::kDfs, CfgTdfsGreedyAuto},
            EngineCase{"cost_scalar", EngineUnderTest::kDfs,
                       CfgTdfsCostScalar},
            EngineCase{"halfsteal_simd", EngineUnderTest::kDfs,
                       CfgHalfStealSimd},
            EngineCase{"newkernel_cost", EngineUnderTest::kDfs,
                       CfgNewKernelCost},
            EngineCase{"stmatch", EngineUnderTest::kDfs, CfgStmatch},
            EngineCase{"twodev", EngineUnderTest::kDfs, CfgTwoDevices},
            EngineCase{"bfs", EngineUnderTest::kBfs, CfgBfs},
            EngineCase{"hybrid_cost", EngineUnderTest::kHybrid,
                       CfgHybridCost}),
        ::testing::Values(PrefilterKind::kLDF, PrefilterKind::kNeighborhood),
        ::testing::Values(12, 14, 17, 20)),
    SweepName);

}  // namespace
}  // namespace tdfs
