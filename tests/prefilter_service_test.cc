// Service-layer prefiltering: differential counts through the job path,
// FilteredGraph cache behavior across snapshots, the empty-candidate
// short-circuit, and the stats-cache regression (retired snapshots must
// not stay pinned by the GraphStats cache).

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/matcher.h"
#include "dyn/graph_delta.h"
#include "graph/generators.h"
#include "query/patterns.h"
#include "service/match_service.h"
#include "util/prng.h"

namespace tdfs {
namespace {

class PrefilterServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<Graph>(GenerateBarabasiAlbert(400, 4, 77));
    graph_->AssignZipfLabels(6, 1.4, 78);
    config_ = TdfsConfig();
    config_.num_warps = 3;
    config_.page_pool_pages = 256;
    config_.page_bytes = 1024;
    config_.prefilter = PrefilterKind::kNeighborhood;
  }

  dyn::GraphDelta MakeDelta(const Graph& g, int num_ins, int num_del,
                            uint64_t seed) {
    Xoshiro256ss rng(seed);
    std::vector<dyn::EdgePair> deletions;
    while (static_cast<int>(deletions.size()) < num_del) {
      const int64_t e = rng.Range(0, g.NumDirectedEdges() - 1);
      deletions.emplace_back(g.EdgeSource(e), g.EdgeTarget(e));
    }
    std::vector<dyn::EdgePair> insertions;
    while (static_cast<int>(insertions.size()) < num_ins) {
      const VertexId u =
          static_cast<VertexId>(rng.Range(0, g.NumVertices() - 1));
      const VertexId v =
          static_cast<VertexId>(rng.Range(0, g.NumVertices() - 1));
      if (u == v || g.HasEdge(u, v)) {
        continue;
      }
      insertions.emplace_back(u, v);
    }
    return dyn::GraphDelta::Build(std::move(insertions),
                                  std::move(deletions))
        .value();
  }

  std::unique_ptr<Graph> graph_;
  EngineConfig config_;
};

TEST_F(PrefilterServiceTest, PrefilteredJobsMatchTheUnfilteredOracle) {
  MatchService service(*graph_, config_);
  for (int pattern : {12, 14, 17, 20}) {
    const QueryGraph q = Pattern(pattern);
    RunResult oracle = RunMatchingRef(*graph_, q, TdfsConfig());
    ASSERT_TRUE(oracle.status.ok()) << oracle.status;
    // Two submits of the same query: the second is served from the
    // FilteredGraph cache and must agree bit-for-bit.
    for (int round = 0; round < 2; ++round) {
      RunResult r = service.Submit(q).get();
      ASSERT_TRUE(r.status.ok()) << r.status;
      EXPECT_EQ(r.match_count, oracle.match_count)
          << PatternName(pattern) << " round " << round;
      EXPECT_EQ(r.counters.prefilter_original_vertices,
                graph_->NumVertices());
    }
  }
}

TEST_F(PrefilterServiceTest, MultiDevicePrefilteredJobsMerge) {
  config_.num_devices = 2;
  config_.num_warps = 2;
  MatchService service(*graph_, config_);
  const QueryGraph q = Pattern(14);
  RunResult oracle = RunMatchingRef(*graph_, q, TdfsConfig());
  ASSERT_TRUE(oracle.status.ok()) << oracle.status;
  RunResult r = service.Submit(q).get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, oracle.match_count);
}

TEST_F(PrefilterServiceTest, CostPlannerUsesExactCandidateCounts) {
  config_.planner = PlannerKind::kCost;
  MatchService service(*graph_, config_);
  for (int pattern : {12, 14, 17}) {
    const QueryGraph q = Pattern(pattern);
    RunResult oracle = RunMatchingRef(*graph_, q, TdfsConfig());
    ASSERT_TRUE(oracle.status.ok()) << oracle.status;
    RunResult r = service.Submit(q).get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, oracle.match_count) << PatternName(pattern);
  }
}

TEST_F(PrefilterServiceTest, EmptyCandidateSetShortCircuitsToZero) {
  MatchService service(*graph_, config_);
  QueryGraph q(3);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.SetVertexLabel(0, 0);
  q.SetVertexLabel(1, 1);
  q.SetVertexLabel(2, 99);  // label absent from the data graph
  RunResult r = service.Submit(q).get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, 0u);
  // The engine never ran: no work was metered.
  EXPECT_EQ(r.counters.work_units, 0u);
}

TEST_F(PrefilterServiceTest, FilteredCacheFollowsSnapshotUpdates) {
  MatchService service(*graph_, config_);
  const QueryGraph q = Pattern(14);
  RunResult before = service.Submit(q).get();
  ASSERT_TRUE(before.status.ok()) << before.status;

  const dyn::GraphDelta delta = MakeDelta(*graph_, 40, 30, 79);
  ASSERT_TRUE(service.ApplyUpdate(delta).ok());

  // A stale filtered view of the retired snapshot must not serve the new
  // version: recompute the oracle on the published snapshot and compare.
  const std::shared_ptr<const Graph> post = service.Snapshot();
  RunResult oracle = RunMatchingRef(*post, q, TdfsConfig());
  ASSERT_TRUE(oracle.status.ok()) << oracle.status;
  RunResult after = service.Submit(q).get();
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_EQ(after.match_count, oracle.match_count);
}

TEST_F(PrefilterServiceTest, ContinuousQueriesStayExactUnderPrefilter) {
  MatchService service(*graph_, config_);
  Result<int64_t> id = service.RegisterContinuousQuery(Pattern(12));
  ASSERT_TRUE(id.ok()) << id.status();
  for (uint64_t seed = 101; seed <= 103; ++seed) {
    const dyn::GraphDelta delta =
        MakeDelta(*service.Snapshot(), 25, 20, seed);
    ASSERT_TRUE(service.ApplyUpdate(delta).ok());
    RunResult oracle =
        RunMatchingRef(*service.Snapshot(), Pattern(12), TdfsConfig());
    ASSERT_TRUE(oracle.status.ok()) << oracle.status;
    Result<uint64_t> count = service.ContinuousQueryCount(id.value());
    ASSERT_TRUE(count.ok()) << count.status();
    EXPECT_EQ(count.value(), oracle.match_count) << "after batch " << seed;
  }
}

// Regression (stats-cache pinning): the GraphStats cache used to hold the
// snapshot it was computed from via shared_ptr, keeping every RETIRED
// graph version alive for the service's whole lifetime after a batch
// update. The cache now keys by weak_ptr, so a retired snapshot's memory
// is released as soon as its last in-flight job finishes.
TEST_F(PrefilterServiceTest, StatsCacheDoesNotPinRetiredSnapshots) {
  config_.planner = PlannerKind::kCost;
  MatchService service(*graph_, config_);
  // Version 0 aliases the caller's graph (non-owning), so its weak_ptr
  // carries no lifetime signal; move to an owned snapshot first.
  ASSERT_TRUE(
      service.ApplyUpdate(MakeDelta(*service.Snapshot(), 20, 10, 110)).ok());
  // Prime the stats cache against version 1.
  ASSERT_TRUE(service.Submit(Pattern(12)).get().status.ok());
  std::weak_ptr<const Graph> v1 = service.Snapshot();
  ASSERT_FALSE(v1.expired());

  // A batch that shifts the degree/label statistics retires version 1.
  const dyn::GraphDelta delta = MakeDelta(*service.Snapshot(), 60, 40, 111);
  ASSERT_TRUE(service.ApplyUpdate(delta).ok());
  // The worker thread may still hold its finished device item for an
  // instant after the future resolves; poll briefly before asserting.
  for (int i = 0; i < 200 && !v1.expired(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(v1.expired())
      << "a retired snapshot is still pinned by the service";

  // And the changed statistics force a replan (fresh fingerprint, fresh
  // plan-cache entry) rather than silently reusing the stale order.
  const int64_t misses_before = service.plan_cache()->misses();
  RunResult oracle =
      RunMatchingRef(*service.Snapshot(), Pattern(12), TdfsConfig());
  ASSERT_TRUE(oracle.status.ok()) << oracle.status;
  RunResult r = service.Submit(Pattern(12)).get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, oracle.match_count);
  EXPECT_GT(service.plan_cache()->misses(), misses_before)
      << "statistics change did not invalidate the cached plan";
}

}  // namespace
}  // namespace tdfs
