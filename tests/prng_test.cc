#include "util/prng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace tdfs {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64Test, KnownReferenceValues) {
  // Reference values of the canonical SplitMix64 with seed 0.
  SplitMix64 rng(0);
  EXPECT_EQ(rng(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(rng(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(rng(), 0x06c45d188009454fULL);
}

TEST(XoshiroTest, DeterministicForSeed) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(XoshiroTest, BelowStaysInRange) {
  Xoshiro256ss rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(XoshiroTest, BelowOneAlwaysZero) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(XoshiroTest, RangeInclusiveBounds) {
  Xoshiro256ss rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 2000 draws
}

TEST(XoshiroTest, RangeSingleton) {
  Xoshiro256ss rng(1);
  EXPECT_EQ(rng.Range(5, 5), 5);
}

TEST(XoshiroTest, BelowIsRoughlyUniform) {
  Xoshiro256ss rng(42);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.Below(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int count : histogram) {
    // 5 sigma ~ 5 * sqrt(npq) ~ 470 for these parameters.
    EXPECT_NEAR(count, expected, 500.0);
  }
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XoshiroTest, ChanceExtremes) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(XoshiroTest, ChanceMatchesProbability) {
  Xoshiro256ss rng(17);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    hits += rng.Chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.25, 0.02);
}

TEST(XoshiroDeathTest, BelowZeroBoundAborts) {
  Xoshiro256ss rng(1);
  EXPECT_DEATH(rng.Below(0), "TDFS_CHECK");
}

}  // namespace
}  // namespace tdfs
