// Tests for the Prometheus text exporter and scrape endpoint
// (obs/prometheus.h): golden exposition format, name/label sanitization,
// cumulative histogram buckets, the HTTP server lifecycle, and
// concurrent scrape-while-recording (the tsan configuration exercises
// the lock-free snapshot path).

#include "obs/prometheus.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace tdfs::obs {
namespace {

TEST(PrometheusNameTest, SanitizesAndPrefixes) {
  EXPECT_EQ(PrometheusMetricName("dfs.work_units"), "tdfs_dfs_work_units");
  EXPECT_EQ(PrometheusMetricName("service.stage_us.plan_cache"),
            "tdfs_service_stage_us_plan_cache");
  EXPECT_EQ(PrometheusMetricName("weird-name with spaces"),
            "tdfs_weird_name_with_spaces");
  EXPECT_EQ(PrometheusMetricName("already_clean"), "tdfs_already_clean");
}

TEST(PrometheusNameTest, EscapesLabelValues) {
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("a\nb"), "a\\nb");
}

TEST(PrometheusRenderTest, GoldenExpositionFormat) {
  MetricsRegistry registry;
  registry.GetCounter("svc.jobs")->Add(7);
  registry.GetGauge("mem.in_use_bytes")->Set(4096);
  Histogram* h = registry.GetHistogram("svc.latency_us");
  h->Observe(0);  // bucket le=0
  h->Observe(1);  // bucket le=1
  h->Observe(2);  // bucket le=3
  h->Observe(5);  // bucket le=7

  const std::string text = RenderPrometheusText(registry);

  // Each family is announced with a # TYPE line and carries the raw
  // name as a label.
  EXPECT_NE(text.find("# TYPE tdfs_svc_jobs counter\n"), std::string::npos);
  EXPECT_NE(text.find("tdfs_svc_jobs{name=\"svc.jobs\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tdfs_mem_in_use_bytes gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("tdfs_mem_in_use_bytes{name=\"mem.in_use_bytes\"} 4096"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tdfs_svc_latency_us histogram\n"),
            std::string::npos);

  // Cumulative buckets over the log2 bounds 0, 1, 3, 7, ..., +Inf.
  EXPECT_NE(
      text.find("tdfs_svc_latency_us_bucket{name=\"svc.latency_us\",le=\"0\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("tdfs_svc_latency_us_bucket{name=\"svc.latency_us\",le=\"1\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find("tdfs_svc_latency_us_bucket{name=\"svc.latency_us\",le=\"3\"} 3"),
      std::string::npos);
  EXPECT_NE(
      text.find("tdfs_svc_latency_us_bucket{name=\"svc.latency_us\",le=\"7\"} 4"),
      std::string::npos);
  EXPECT_NE(text.find(
                "tdfs_svc_latency_us_bucket{name=\"svc.latency_us\",le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("tdfs_svc_latency_us_sum{name=\"svc.latency_us\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("tdfs_svc_latency_us_count{name=\"svc.latency_us\"} 4"),
            std::string::npos);

  // Families are sorted by metric name within each type section
  // (counters, then gauges, then histograms) and every line is either a
  // comment or "name{labels} value".
  std::istringstream lines(text);
  std::string line;
  std::string prev_family;
  std::string prev_type;
  int families = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t space = line.find(' ', 7);
      const std::string family = line.substr(7, space - 7);
      const std::string type = line.substr(space + 1);
      if (type != prev_type) {
        prev_family.clear();
        prev_type = type;
      }
      EXPECT_LT(prev_family, family) << "families not sorted";
      prev_family = family;
      ++families;
      continue;
    }
    EXPECT_EQ(line.rfind("tdfs_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
  EXPECT_EQ(families, 3);
}

TEST(PrometheusRenderTest, EmptyRegistryRendersEmptyPage) {
  MetricsRegistry registry;
  EXPECT_EQ(RenderPrometheusText(registry), "");
}

// Minimal HTTP GET against 127.0.0.1:port; returns the raw response.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ServesScrapePage) {
  MetricsRegistry registry;
  registry.GetCounter("svc.jobs")->Add(3);

  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(&registry, 0).ok());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(response.find("tdfs_svc_jobs{name=\"svc.jobs\"} 3"),
            std::string::npos);

  // GET / serves the same page; unknown paths 404.
  EXPECT_NE(HttpGet(server.port(), "/").find("tdfs_svc_jobs"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/nope").find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsHttpServerTest, StopIsIdempotentAndRestartable) {
  MetricsRegistry registry;
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(&registry, 0).ok());
  const int first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.Stop();
  server.Stop();
  ASSERT_TRUE(server.Start(&registry, 0).ok());
  EXPECT_GT(server.port(), 0);
  server.Stop();
}

TEST(MetricsHttpServerTest, ConcurrentScrapeWhileRecording) {
  MetricsRegistry registry;
  Counter* jobs = registry.GetCounter("svc.jobs");
  Histogram* lat = registry.GetHistogram("svc.latency_us");

  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(&registry, 0).ok());
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      jobs->Add(1);
      lat->Observe(i++ & 1023);
    }
  });
  std::vector<std::thread> scrapers;
  std::atomic<int> ok_scrapes{0};
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        const std::string response = HttpGet(port, "/metrics");
        if (response.find("HTTP/1.1 200") != std::string::npos &&
            response.find("tdfs_svc_jobs") != std::string::npos) {
          ok_scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : scrapers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  server.Stop();
  EXPECT_EQ(ok_scrapes.load(), 60);
}

}  // namespace
}  // namespace tdfs::obs
