#include "query/query_graph.h"

#include <gtest/gtest.h>

namespace tdfs {
namespace {

TEST(QueryGraphTest, EdgeAdditionAndDegree) {
  QueryGraph q(4);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  EXPECT_EQ(q.NumVertices(), 4);
  EXPECT_EQ(q.NumEdges(), 3);
  EXPECT_TRUE(q.HasEdge(0, 1));
  EXPECT_TRUE(q.HasEdge(1, 0));
  EXPECT_FALSE(q.HasEdge(0, 2));
  EXPECT_EQ(q.Degree(0), 1);
  EXPECT_EQ(q.Degree(1), 2);
}

TEST(QueryGraphTest, InitializerListConstructor) {
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(triangle.NumEdges(), 3);
  EXPECT_TRUE(triangle.HasEdge(0, 2));
}

TEST(QueryGraphTest, NeighborMask) {
  QueryGraph q(4, {{0, 1}, {0, 3}});
  EXPECT_EQ(q.NeighborMask(0), 0b1010u);
  EXPECT_EQ(q.NeighborMask(1), 0b0001u);
  EXPECT_EQ(q.NeighborMask(2), 0u);
}

TEST(QueryGraphTest, LabelsDefaultToUnlabeled) {
  QueryGraph q(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(q.IsLabeled());
  EXPECT_EQ(q.VertexLabel(0), kNoLabel);
}

TEST(QueryGraphTest, SetLabelsLabelsGraph) {
  QueryGraph q(3, {{0, 1}, {1, 2}});
  q.SetVertexLabel(1, 2);
  EXPECT_TRUE(q.IsLabeled());
  EXPECT_EQ(q.VertexLabel(1), 2);
  EXPECT_EQ(q.VertexLabel(0), 0);  // unset labels default to 0
}

TEST(QueryGraphTest, ConnectivityDetection) {
  QueryGraph connected(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(connected.IsConnected());
  QueryGraph disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(disconnected.IsConnected());
  QueryGraph isolated(3, {{0, 1}});
  EXPECT_FALSE(isolated.IsConnected());
  QueryGraph single(1);
  EXPECT_TRUE(single.IsConnected());
}

TEST(QueryGraphTest, ToStringMentionsEdgesAndLabels) {
  QueryGraph q(3, {{0, 1}, {1, 2}});
  q.SetVertexLabel(2, 1);
  const std::string s = q.ToString();
  EXPECT_NE(s.find("k=3"), std::string::npos);
  EXPECT_NE(s.find("(0,1)"), std::string::npos);
  EXPECT_NE(s.find("labels"), std::string::npos);
}

TEST(QueryGraphDeathTest, SelfLoopAborts) {
  QueryGraph q(3);
  EXPECT_DEATH(q.AddEdge(1, 1), "self-loop");
}

TEST(QueryGraphDeathTest, DuplicateEdgeAborts) {
  QueryGraph q(3);
  q.AddEdge(0, 1);
  EXPECT_DEATH(q.AddEdge(1, 0), "duplicate");
}

TEST(QueryGraphDeathTest, OversizedQueryAborts) {
  EXPECT_DEATH(QueryGraph q(17), "out of range");
}

}  // namespace
}  // namespace tdfs
