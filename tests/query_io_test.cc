#include "query/query_io.h"

#include <gtest/gtest.h>

#include "query/patterns.h"

namespace tdfs {
namespace {

TEST(QueryIoTest, ParsesUnlabeledTriangle) {
  auto q = ParseQueryText("v 3\ne 0 1\ne 1 2\ne 2 0\n");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q.value().NumVertices(), 3);
  EXPECT_EQ(q.value().NumEdges(), 3);
  EXPECT_FALSE(q.value().IsLabeled());
}

TEST(QueryIoTest, ParsesLabelsAndComments) {
  auto q = ParseQueryText(
      "# a labeled path\nv 3\ne 0 1\ne 1 2\nl 0 2\nl 1 0\nl 2 1\n");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().IsLabeled());
  EXPECT_EQ(q.value().VertexLabel(0), 2);
  EXPECT_EQ(q.value().VertexLabel(2), 1);
}

TEST(QueryIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseQueryText("").ok());
  EXPECT_FALSE(ParseQueryText("e 0 1\n").ok());       // edge before header
  EXPECT_FALSE(ParseQueryText("v 0\n").ok());         // bad count
  EXPECT_FALSE(ParseQueryText("v 99\n").ok());        // too large
  EXPECT_FALSE(ParseQueryText("v 3\nv 3\n").ok());    // duplicate header
  EXPECT_FALSE(ParseQueryText("v 3\ne 0 0\n").ok());  // self loop
  EXPECT_FALSE(ParseQueryText("v 3\ne 0 5\n").ok());  // out of range
  EXPECT_FALSE(ParseQueryText("v 3\ne 0 1\ne 1 0\n").ok());  // duplicate
  EXPECT_FALSE(ParseQueryText("v 3\nx 1 2\n").ok());  // unknown tag
  EXPECT_FALSE(ParseQueryText("v 3\nl 9 1\n").ok());  // label out of range
}

TEST(QueryIoTest, ErrorsCarryLineNumbers) {
  auto q = ParseQueryText("v 3\ne 0 1\ne 0 0\n");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("line 3"), std::string::npos);
}

TEST(QueryIoTest, RoundTripsAllPatterns) {
  for (int i : AllPatternIndices()) {
    QueryGraph original = Pattern(i);
    auto reparsed = ParseQueryText(QueryToText(original));
    ASSERT_TRUE(reparsed.ok()) << PatternName(i);
    const QueryGraph& q = reparsed.value();
    ASSERT_EQ(q.NumVertices(), original.NumVertices());
    EXPECT_EQ(q.NumEdges(), original.NumEdges());
    EXPECT_EQ(q.IsLabeled(), original.IsLabeled());
    for (int u = 0; u < q.NumVertices(); ++u) {
      EXPECT_EQ(q.VertexLabel(u), original.VertexLabel(u));
      for (int w = u + 1; w < q.NumVertices(); ++w) {
        EXPECT_EQ(q.HasEdge(u, w), original.HasEdge(u, w));
      }
    }
  }
}

TEST(QueryIoTest, MissingFileIsIOError) {
  auto q = LoadQueryFile("/nonexistent/query.txt");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace tdfs
