// Randomized-query property sweep: beyond the fixed P1-P22 suite, random
// connected query graphs (labeled and unlabeled) must produce identical
// counts across the oracle, T-DFS, and the hybrid engine. This catches
// plan-compiler corner cases (odd orders, reuse shapes, restriction
// layouts) that hand-picked patterns miss.

#include <gtest/gtest.h>

#include "core/hybrid_engine.h"
#include "core/matcher.h"
#include "graph/generators.h"
#include "query/automorphism.h"
#include "util/prng.h"

namespace tdfs {
namespace {

// Random connected query: a spanning tree plus extra random edges.
QueryGraph RandomConnectedQuery(int k, double extra_edge_prob,
                                bool labeled, Xoshiro256ss* rng) {
  QueryGraph q(k);
  for (int v = 1; v < k; ++v) {
    q.AddEdge(v, static_cast<int>(rng->Below(v)));
  }
  for (int u = 0; u < k; ++u) {
    for (int v = u + 1; v < k; ++v) {
      if (!q.HasEdge(u, v) && rng->Chance(extra_edge_prob)) {
        q.AddEdge(u, v);
      }
    }
  }
  if (labeled) {
    for (int u = 0; u < k; ++u) {
      q.SetVertexLabel(u, static_cast<Label>(rng->Below(3)));
    }
  }
  return q;
}

class RandomQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomQueryTest, EnginesAgreeWithOracle) {
  const int trial = GetParam();
  Xoshiro256ss rng(10'000 + static_cast<uint64_t>(trial));
  const bool labeled = trial % 2 == 0;
  Graph g = GenerateErdosRenyi(100, 450, 20'000 + trial);
  if (labeled) {
    g.AssignUniformLabels(3, 30'000 + trial);
  }
  const int k = 3 + static_cast<int>(rng.Below(3));  // 3..5
  QueryGraph q = RandomConnectedQuery(k, 0.4, labeled, &rng);

  EngineConfig config = TdfsConfig();
  config.num_warps = 3;
  RunResult oracle = RunMatchingRef(g, q, config);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status;

  RunResult tdfs = RunMatching(g, q, config);
  ASSERT_TRUE(tdfs.status.ok()) << tdfs.status;
  EXPECT_EQ(tdfs.match_count, oracle.match_count) << q.ToString();

  EngineConfig split = config;
  split.clock = ClockKind::kVirtual;
  split.timeout_work_units = 128;
  RunResult decomposed = RunMatching(g, q, split);
  ASSERT_TRUE(decomposed.status.ok());
  EXPECT_EQ(decomposed.match_count, oracle.match_count) << q.ToString();

  RunResult hybrid = RunMatchingHybrid(g, q, config);
  ASSERT_TRUE(hybrid.status.ok());
  EXPECT_EQ(hybrid.match_count, oracle.match_count) << q.ToString();

  // Symmetry-breaking invariant on the random query.
  EngineConfig nosym = config;
  nosym.use_symmetry_breaking = false;
  RunResult unrestricted = RunMatching(g, q, nosym);
  ASSERT_TRUE(unrestricted.status.ok());
  EXPECT_EQ(unrestricted.match_count,
            oracle.match_count * AutomorphismCount(q))
      << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Trials, RandomQueryTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace tdfs
