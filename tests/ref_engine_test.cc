#include "core/ref_engine.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/automorphism.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

Graph CompleteGraph(int n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

uint64_t RefCount(const Graph& g, const QueryGraph& q,
                  bool symmetry = true) {
  EngineConfig config = TdfsConfig();
  config.use_symmetry_breaking = symmetry;
  RunResult r = RunMatchingRef(g, q, config);
  EXPECT_TRUE(r.status.ok()) << r.status;
  return r.match_count;
}

TEST(RefEngineTest, SingleEdgePatternCountsEdges) {
  Graph g = GenerateErdosRenyi(50, 120, 3);
  QueryGraph edge(2, {{0, 1}});
  EXPECT_EQ(RefCount(g, edge), 120u);
  // Without symmetry breaking each edge matches in both orientations.
  EXPECT_EQ(RefCount(g, edge, false), 240u);
}

TEST(RefEngineTest, TrianglesInK4) {
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(RefCount(CompleteGraph(4), triangle), 4u);
}

TEST(RefEngineTest, CliquesInCompleteGraphs) {
  // #k-cliques in K_n = C(n, k); the engine counts non-induced embeddings
  // modulo automorphisms, which coincides for cliques.
  EXPECT_EQ(RefCount(CompleteGraph(5), Pattern(2)), 5u);   // K4 in K5
  EXPECT_EQ(RefCount(CompleteGraph(6), Pattern(2)), 15u);  // K4 in K6
  EXPECT_EQ(RefCount(CompleteGraph(6), Pattern(7)), 6u);   // K5 in K6
}

TEST(RefEngineTest, NonInducedDiamondsInK4) {
  // Non-induced embeddings of the diamond into K4: 4!/|Aut| = 24/4 = 6.
  EXPECT_EQ(RefCount(CompleteGraph(4), Pattern(1)), 6u);
}

TEST(RefEngineTest, HexagonsInK6) {
  EXPECT_EQ(RefCount(CompleteGraph(6), Pattern(8)), 60u);  // 6!/12
}

TEST(RefEngineTest, TriangleFreeGraphHasNoTriangles) {
  // Star graphs are triangle-free.
  GraphBuilder builder(10);
  for (VertexId v = 1; v < 10; ++v) {
    builder.AddEdge(0, v);
  }
  Graph star = builder.Build();
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(RefCount(star, triangle), 0u);
}

TEST(RefEngineTest, PathsInTriangle) {
  // 3-vertex paths in K3: one per choice of center = 3.
  QueryGraph path(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(RefCount(CompleteGraph(3), path), 3u);
}

TEST(RefEngineTest, SymmetryBreakingDividesByAutomorphisms) {
  Graph g = GenerateErdosRenyi(40, 200, 7);
  for (int i : UnlabeledPatternIndices()) {
    QueryGraph q = Pattern(i);
    const uint64_t restricted = RefCount(g, q, true);
    const uint64_t unrestricted = RefCount(g, q, false);
    EXPECT_EQ(unrestricted, restricted * AutomorphismCount(q))
        << PatternName(i);
  }
}

TEST(RefEngineTest, LabeledMatchingFiltersByLabel) {
  // Triangle 0-1-2 labeled (0,1,2) and triangle 3-4-5 labeled (0,0,1).
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 3);
  builder.SetLabel(0, 0);
  builder.SetLabel(1, 1);
  builder.SetLabel(2, 2);
  builder.SetLabel(3, 0);
  builder.SetLabel(4, 0);
  builder.SetLabel(5, 1);
  Graph g = builder.Build();

  QueryGraph q(3, {{0, 1}, {1, 2}, {2, 0}});
  q.SetVertexLabel(0, 0);
  q.SetVertexLabel(1, 1);
  q.SetVertexLabel(2, 2);
  EXPECT_EQ(RefCount(g, q), 1u);  // only triangle {0,1,2}

  QueryGraph q2(3, {{0, 1}, {1, 2}, {2, 0}});
  q2.SetVertexLabel(0, 0);
  q2.SetVertexLabel(1, 0);
  q2.SetVertexLabel(2, 1);
  EXPECT_EQ(RefCount(g, q2), 1u);  // only triangle {3,4,5}
}

TEST(RefEngineTest, VisitorEnumeratesDistinctValidMatches) {
  Graph g = CompleteGraph(4);
  QueryGraph triangle(3, {{0, 1}, {1, 2}, {2, 0}});
  std::set<std::vector<VertexId>> seen;
  RunResult r = RunMatchingRef(
      g, triangle, TdfsConfig(),
      [&](std::span<const VertexId> match) {
        std::vector<VertexId> m(match.begin(), match.end());
        // Every pair adjacent in the query must be adjacent in the graph.
        EXPECT_TRUE(g.HasEdge(m[0], m[1]));
        EXPECT_TRUE(g.HasEdge(m[1], m[2]));
        EXPECT_TRUE(g.HasEdge(m[2], m[0]));
        EXPECT_TRUE(seen.insert(m).second) << "duplicate match";
      });
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(seen.size(), r.match_count);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RefEngineTest, VisitorReportsInQueryVertexOrder) {
  // Path query 0-1-2 where vertex 1 is the center; the visitor entry for
  // query vertex 1 must always be the path's center, regardless of the
  // plan's matching order.
  Graph g = CompleteGraph(3);
  QueryGraph path(3, {{0, 1}, {1, 2}});
  RunResult r = RunMatchingRef(
      g, path, TdfsConfig(), [&](std::span<const VertexId> match) {
        EXPECT_TRUE(g.HasEdge(match[0], match[1]));
        EXPECT_TRUE(g.HasEdge(match[1], match[2]));
      });
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, 3u);
}

TEST(RefEngineTest, DegreeFilterDoesNotChangeCounts) {
  Graph g = GenerateBarabasiAlbert(100, 3, 5);
  for (int i : {1, 3, 8}) {
    EngineConfig with = TdfsConfig();
    EngineConfig without = TdfsConfig();
    without.use_degree_filter = false;
    EXPECT_EQ(RunMatchingRef(g, Pattern(i), with).match_count,
              RunMatchingRef(g, Pattern(i), without).match_count)
        << PatternName(i);
  }
}

}  // namespace
}  // namespace tdfs
