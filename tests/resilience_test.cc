#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace tdfs {
namespace {

// End-to-end fault tolerance: injected faults and genuinely undersized
// resources must either be absorbed in-run (pressure release, retry,
// deferral), recovered by the whole-job retry ladder, or fail loudly —
// and a recovered run must report exactly the oracle count. Failpoint
// registry semantics live in failpoint_test.cc.

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }

  // Oracle counts are always computed with failpoints disarmed.
  static uint64_t Oracle(const Graph& g, const QueryGraph& q,
                         const EngineConfig& config) {
    fail::DisarmAll();
    RunResult r = RunMatchingRef(g, q, config);
    EXPECT_TRUE(r.status.ok());
    return r.match_count;
  }
};

TEST_F(ResilienceTest, NothingArmedMeansNoFaultActivity) {
  Graph g = GenerateErdosRenyi(150, 600, 11);
  EngineConfig config = TdfsConfig();
  const uint64_t expected = Oracle(g, Pattern(2), config);
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_EQ(r.counters.failpoint_fires, 0);
  EXPECT_EQ(r.counters.pressure_retries, 0);
  EXPECT_EQ(r.counters.deferred_tasks, 0);
  EXPECT_EQ(r.counters.attempts, 1);
  EXPECT_FALSE(r.counters.degraded_mode);
}

TEST_F(ResilienceTest, InjectedAllocFailuresAreAbsorbedByPressureRetries) {
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.num_warps = 4;
  config.page_bytes = 64;  // small pages: many allocations to inject into
  const uint64_t expected = Oracle(g, Pattern(8), config);
  // Every 2nd page allocation fails. The in-run retry re-calls the
  // allocator, whose next call succeeds, so a single attempt absorbs every
  // fault without ever reporting failure.
  fail::Arm("page_alloc", fail::Trigger::Every(2));
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_GT(r.counters.failpoint_fires, 0);
  EXPECT_GT(r.counters.pressure_retries, 0);
  EXPECT_TRUE(r.counters.degraded_mode);
  EXPECT_EQ(r.counters.attempts, 1);
}

TEST_F(ResilienceTest, SingleAllocFailureAtChosenCallIsRecovered) {
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.num_warps = 4;
  config.page_bytes = 64;
  const uint64_t expected = Oracle(g, Pattern(8), config);
  fail::Arm("page_alloc", fail::Trigger::Nth(3));
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_EQ(r.counters.failpoint_fires, 1);
  EXPECT_GT(r.counters.pressure_retries, 0);
}

TEST_F(ResilienceTest, EscalationLadderRecoversUndersizedPool) {
  // The ExhaustedPagePoolFailsLoudly config (dfs_engine_test.cc), but with
  // retries opted in: the ladder must walk release -> bigger pool ->
  // max-degree arrays and land on an exact count.
  Graph g = GenerateErdosRenyi(200, 1500, 4);
  EngineConfig config = TdfsConfig();
  config.page_pool_pages = 1;  // nowhere near enough
  config.page_bytes = 64;
  config.pressure_max_retries = 2;       // keep failing attempts quick
  config.pressure_backoff_ns = 1'000;
  config.pressure_max_deferrals = 16;
  config.retry.max_attempts = 4;
  const uint64_t expected = Oracle(g, Pattern(2), config);
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_GT(r.counters.attempts, 1);
  EXPECT_TRUE(r.counters.degraded_mode);
  EXPECT_GT(r.counters.pressure_retries, 0);
}

TEST_F(ResilienceTest, RetryDisabledStillFailsFast) {
  Graph g = GenerateErdosRenyi(200, 1500, 4);
  EngineConfig config = TdfsConfig();
  config.page_pool_pages = 1;
  config.page_bytes = 64;
  config.retry.max_attempts = 1;  // the default: opt-out preserved
  RunResult r = RunMatching(g, Pattern(2), config);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
}

TEST_F(ResilienceTest, GenuinePressureDegradesGracefully) {
  // A pool that is tight but workable: 6 tiny pages across 4 warps that
  // each want several. The warps must ride out dry spells with release +
  // retry + deferral and still count exactly — the headline in-run
  // degradation behavior.
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.num_warps = 4;
  config.page_pool_pages = 6;
  config.page_bytes = 64;
  config.pressure_backoff_ns = 5'000;  // keep dry-spell waits short
  config.retry.max_attempts = 4;       // safety net via the ladder
  const uint64_t expected = Oracle(g, Pattern(8), config);
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_TRUE(r.counters.degraded_mode);
  EXPECT_GT(r.counters.pressure_retries + r.counters.deferred_tasks +
                r.counters.pressure_pages_released,
            0);
}

TEST_F(ResilienceTest, DeviceFailoverRecoversLostSlice) {
  Graph g = GenerateErdosRenyi(150, 600, 11);
  EngineConfig single = TdfsConfig();
  const uint64_t expected = Oracle(g, Pattern(2), single);

  EngineConfig config = TdfsConfig();
  config.num_devices = 4;
  config.retry.max_attempts = 2;
  // Device 1's job dies on first execution (the 2nd device_run call);
  // failover re-executes exactly that edge slice.
  fail::Arm("device_run", fail::Trigger::Nth(2));
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_EQ(r.counters.devices_recovered, 1);
  EXPECT_EQ(r.counters.attempts, 2);
  EXPECT_GT(r.counters.failpoint_fires, 0);
  EXPECT_EQ(r.per_device_ms.size(), 4u);
}

TEST_F(ResilienceTest, DeviceLossWithoutRetryFailsLoudly) {
  Graph g = GenerateErdosRenyi(150, 600, 11);
  EngineConfig config = TdfsConfig();
  config.num_devices = 4;  // retry.max_attempts stays 1
  fail::Arm("device_run", fail::Trigger::Nth(2));
  RunResult r = RunMatching(g, Pattern(2), config);
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
}

TEST_F(ResilienceTest, MainKernelLaunchFailureIsRetryable) {
  Graph g = GenerateErdosRenyi(150, 600, 11);
  EngineConfig config = TdfsConfig();
  config.retry.max_attempts = 2;
  const uint64_t expected = Oracle(g, Pattern(2), config);
  fail::Arm("vgpu_launch", fail::Trigger::Nth(1));
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_EQ(r.counters.attempts, 2);
}

TEST_F(ResilienceTest, ChildKernelLaunchFailureRecoversInline) {
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNewKernel;
  config.newkernel_fanout_threshold = 16;
  config.newkernel_launch_overhead_ns = 0;
  const uint64_t expected = Oracle(g, Pattern(8), config);
  // Call 1 is the main kernel; call 2 is the first child kernel, whose
  // subtree must be re-run inline by the recovery warp, not dropped.
  fail::Arm("vgpu_launch", fail::Trigger::Nth(2));
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_GT(r.counters.kernels_launched, 0);
  EXPECT_TRUE(r.counters.degraded_mode);
}

TEST_F(ResilienceTest, QueueSaturationFailpointStaysExact) {
  // Complements the tiny-capacity test in dfs_engine_test.cc: here the
  // queue itself reports full on every 2nd enqueue, exercising the Alg. 4
  // in-place fallback under decomposition pressure.
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 64;  // fire constantly
  config.num_warps = 4;
  const uint64_t expected = Oracle(g, Pattern(8), config);
  fail::Arm("queue_enqueue", fail::Trigger::Every(2));
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_GT(r.counters.queue_full_failures, 0);
  EXPECT_GT(r.counters.failpoint_fires, 0);
}

// Regression: the doubling backoff must respect max_backoff_ms. With a
// deep retry ladder and no cap, the sleeps double into the hundreds of
// milliseconds (0.25 ms doubled 11 times sums to ~512 ms); capped at
// 0.5 ms the whole failing job finishes in a few ms.
TEST_F(ResilienceTest, BackoffCapBoundsRetrySleeps) {
  Graph g = GenerateErdosRenyi(100, 300, 5);
  EngineConfig config = TdfsConfig();
  config.retry.max_attempts = 12;
  config.retry.backoff_ms = 0.25;
  config.retry.max_backoff_ms = 0.5;
  fail::Arm("device_run", fail::Trigger::Always());
  Timer wall;
  RunResult r = RunMatching(g, Pattern(1), config);
  const double elapsed_ms = wall.ElapsedMillis();
  EXPECT_FALSE(r.status.ok());  // every attempt is shot down
  EXPECT_LT(elapsed_ms, 200.0)
      << "backoff kept doubling past max_backoff_ms";
}

// Regression: total_ms used to cover only the final attempt, silently
// dropping the failed attempts and the backoff sleeps between them. A
// retried job's total_ms must include the whole retry loop.
TEST_F(ResilienceTest, TotalMsCoversFailedAttemptsAndBackoff) {
  Graph g = GenerateErdosRenyi(150, 600, 11);
  EngineConfig config = TdfsConfig();
  config.retry.max_attempts = 2;
  config.retry.backoff_ms = 50.0;
  fail::Arm("vgpu_launch", fail::Trigger::Nth(1));
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.counters.attempts, 2);
  // Attempt 1 failed, then a 50 ms backoff, then attempt 2 succeeded:
  // total_ms must at least cover the sleep.
  EXPECT_GE(r.total_ms, 45.0);
}

// ---- spill tier failpoints ----

// The host tier itself fails mid-run (injected malloc-level exhaustion):
// with a starved arena and no in-run recovery opted in, the job must fail
// with a clean kResourceExhausted — no leaked pages, no corrupt free list
// (a corrupt list would trip the allocator's double-free CHECKs or hang).
TEST_F(ResilienceTest, SpillPathFailureMidRunFailsCleanly) {
  Graph g = GenerateErdosRenyi(200, 1500, 4);
  EngineConfig config = TdfsConfig();
  config.page_pool_pages = 1;
  config.page_bytes = 64;
  config.spill_to_host = true;
  config.pressure_max_retries = 2;  // keep the dry-spell loop short
  config.pressure_backoff_ns = 1'000;
  config.pressure_max_deferrals = 4;
  fail::Arm("page_spill", fail::Trigger::Always());
  RunResult r = RunMatching(g, Pattern(2), config);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(r.counters.failpoint_fires, 0);
  EXPECT_GT(r.counters.alloc_misses, 0);
}

// Same injection, but with the retry ladder opted in: the job must climb
// to the always-fits array stacks and still land on the exact count.
TEST_F(ResilienceTest, SpillFailureRecoveredByRetryLadder) {
  Graph g = GenerateErdosRenyi(200, 1500, 4);
  EngineConfig config = TdfsConfig();
  config.page_pool_pages = 1;
  config.page_bytes = 64;
  config.spill_to_host = true;
  config.pressure_max_retries = 2;
  config.pressure_backoff_ns = 1'000;
  config.pressure_max_deferrals = 4;
  config.retry.max_attempts = 4;
  const uint64_t expected = Oracle(g, Pattern(2), config);
  fail::Arm("page_spill", fail::Trigger::Always());
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_TRUE(r.counters.degraded_mode);
}

// Promotion failure is benign by contract: TryPromote returning kNullPage
// leaves the spill page where it is, so the run stays exact — promotion
// is an optimization, never a correctness dependency.
TEST_F(ResilienceTest, PromoteFailureLeavesRunExact) {
  Graph g = GenerateBarabasiAlbert(250, 4, 12);
  EngineConfig config = TdfsConfig();
  config.num_warps = 4;
  config.page_pool_pages = 4;
  config.page_bytes = 64;
  config.spill_to_host = true;
  config.clock = ClockKind::kVirtual;
  config.timeout_work_units = 1024;  // many tasks: promotion windows open
  const uint64_t expected = Oracle(g, Pattern(8), config);
  fail::Arm("spill_promote", fail::Trigger::Always());
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_EQ(r.counters.spill_promotions, 0);  // every attempt was shot down
}

TEST_F(ResilienceTest, DegradedRunsAnnounceThemselvesInSummary) {
  Graph g = GenerateErdosRenyi(200, 1500, 4);
  EngineConfig config = TdfsConfig();
  config.page_pool_pages = 1;
  config.page_bytes = 64;
  config.pressure_max_retries = 2;
  config.pressure_backoff_ns = 1'000;
  config.pressure_max_deferrals = 16;
  config.retry.max_attempts = 4;
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_NE(r.Summary().find("degraded"), std::string::npos);
}

}  // namespace
}  // namespace tdfs
