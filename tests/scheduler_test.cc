#include "vgpu/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "vgpu/atomics.h"

namespace tdfs::vgpu {
namespace {

TEST(SchedulerTest, RunsEveryWarpExactlyOnce) {
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> per_warp(16);
  LaunchKernel(16, [&](int warp_id) {
    count.fetch_add(1);
    per_warp[warp_id].fetch_add(1);
  });
  EXPECT_EQ(count.load(), 16);
  for (const auto& c : per_warp) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(SchedulerTest, SingleWarpRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  LaunchKernel(1, [&](int) { body_thread = std::this_thread::get_id(); });
  EXPECT_EQ(body_thread, caller);
}

TEST(SchedulerTest, BlocksUntilAllWarpsComplete) {
  std::atomic<int> finished{0};
  LaunchKernel(8, [&](int warp_id) {
    Nanosleep(warp_id * 100'000);  // staggered finish
    finished.fetch_add(1);
  });
  EXPECT_EQ(finished.load(), 8);  // visible only if LaunchKernel joined
}

TEST(SchedulerTest, StatsCountKernelsAndWarps) {
  LaunchStats stats;
  LaunchKernel(4, [](int) {}, &stats);
  LaunchKernel(2, [](int) {}, &stats);
  EXPECT_EQ(stats.kernels_launched.load(), 2);
  EXPECT_EQ(stats.warps_launched.load(), 6);
  stats.Reset();
  EXPECT_EQ(stats.kernels_launched.load(), 0);
}

TEST(SchedulerTest, NestedLaunchesWork) {
  std::atomic<int> inner_total{0};
  LaunchKernel(3, [&](int) {
    LaunchKernel(2, [&](int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 6);
}

TEST(SchedulerTest, LaunchOverheadDelaysStart) {
  LaunchStats stats;
  const auto start = std::chrono::steady_clock::now();
  LaunchKernel(1, [](int) {}, &stats, 5'000'000 /* 5 ms */);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            4);
}

TEST(SchedulerDeathTest, ZeroWarpsAborts) {
  EXPECT_DEATH(LaunchKernel(0, [](int) {}), "TDFS_CHECK");
}

}  // namespace
}  // namespace tdfs::vgpu
