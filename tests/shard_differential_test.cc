// Sharded-execution exactness sweep (src/shard/).
//
// Contract under test: sharding is a pure execution-layout change. Every
// engine preset (tdfs / stmatch / egsm / pbe) on every partitioner (hash /
// greedy) must produce the reference oracle's match count, and in
// deterministic configurations the sharded run must reproduce the
// unsharded run's work_units / edges_scanned / initial_tasks exactly —
// the bit-identical-work guarantee that makes the speedup comparisons in
// BENCH_shard.json honest.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/matcher.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "obs/trace.h"
#include "query/patterns.h"
#include "shard/shard_runner.h"

namespace tdfs {
namespace {

Graph Unlabeled() { return GenerateErdosRenyi(160, 900, 9001); }
Graph Labeled() {
  Graph g = GenerateBarabasiAlbert(200, 4, 9002);
  g.AssignZipfLabels(6, 1.4, 9003);
  return g;
}

enum class EngineUnderTest { kDfs, kBfs };

struct EngineCase {
  const char* name;
  EngineUnderTest engine;
  EngineConfig (*make)();
};

EngineConfig CfgTdfs() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 3;
  return c;
}
EngineConfig CfgStmatch() {
  EngineConfig c = StmatchConfig();
  c.num_warps = 3;
  return c;
}
EngineConfig CfgEgsm() {
  EngineConfig c = EgsmConfig();
  c.num_warps = 3;
  c.newkernel_launch_overhead_ns = 0;
  return c;
}
EngineConfig CfgPbe() {
  EngineConfig c = PbeConfig();
  c.bfs_memory_budget_bytes = 1 << 16;
  return c;
}

using SweepParam =
    std::tuple<const char*, EngineCase, ShardingKind, int>;

class ShardDifferentialTest : public ::testing::TestWithParam<SweepParam> {
};

TEST_P(ShardDifferentialTest, ShardedCountEqualsOracle) {
  const auto& [graph_name, engine_case, kind, pattern_index] = GetParam();
  Graph g =
      std::string(graph_name) == "labeled" ? Labeled() : Unlabeled();
  QueryGraph q = Pattern(pattern_index);
  if (q.IsLabeled() && !g.IsLabeled()) {
    GTEST_SKIP() << "labeled query on unlabeled graph has no matches";
  }
  EngineConfig config = engine_case.make();
  RunResult oracle = RunMatchingRef(g, q, config);
  ASSERT_TRUE(oracle.status.ok()) << oracle.status;
  config.sharding = kind;
  config.num_shards = 3;
  config.shard_halo_max_degree = 8;
  RunResult r = engine_case.engine == EngineUnderTest::kBfs
                    ? RunMatchingBfs(g, q, config)
                    : RunMatching(g, q, config);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, oracle.match_count)
      << graph_name << " / " << engine_case.name << " / "
      << ShardingKindName(kind) << " / " << PatternName(pattern_index);
  // Sharding actually engaged.
  ASSERT_EQ(r.per_shard.size(), 3u);
  int64_t owned = 0;
  for (const ShardRunStats& s : r.per_shard) {
    owned += s.owned_edges;
  }
  EXPECT_EQ(owned, g.NumDirectedEdges());
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& [graph_name, engine_case, kind, pattern_index] = info.param;
  return std::string(graph_name) + "_" + engine_case.name + "_" +
         ShardingKindName(kind) + "_" + PatternName(pattern_index);
}

INSTANTIATE_TEST_SUITE_P(
    EngineSweep, ShardDifferentialTest,
    ::testing::Combine(
        ::testing::Values("unlabeled", "labeled"),
        ::testing::Values(
            EngineCase{"tdfs", EngineUnderTest::kDfs, CfgTdfs},
            EngineCase{"stmatch", EngineUnderTest::kDfs, CfgStmatch},
            EngineCase{"egsm", EngineUnderTest::kDfs, CfgEgsm},
            EngineCase{"pbe", EngineUnderTest::kBfs, CfgPbe}),
        ::testing::Values(ShardingKind::kHash, ShardingKind::kGreedy),
        ::testing::Values(1, 4, 7, 10)),
    SweepName);

// ---------------------------------------------------------------------------
// Exact work parity: in configurations whose total work is independent of
// scheduling (no decomposition, no child kernels, label index off), the
// sharded run must match the unsharded run's aggregate counters bit for
// bit, not just the count.
// ---------------------------------------------------------------------------

EngineConfig DetTimeout() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 2;
  c.clock = ClockKind::kVirtual;
  c.timeout_work_units = ~uint64_t{0} >> 1;  // never decompose
  return c;
}
EngineConfig DetTimeoutNoRoute() {
  EngineConfig c = DetTimeout();
  c.shard_route_initial = false;
  return c;
}
EngineConfig DetNone() {
  EngineConfig c = TdfsConfig();
  c.num_warps = 2;
  c.steal = StealStrategy::kNone;
  return c;
}
EngineConfig DetHalfSteal() {
  EngineConfig c = StmatchConfig();
  c.num_warps = 1;  // no victims: no steal nondeterminism
  return c;
}
EngineConfig DetNewKernel() {
  EngineConfig c = EgsmConfig();
  c.num_warps = 2;
  c.use_label_index = false;  // shard views skip the index; align arms
  c.newkernel_fanout_threshold = 1 << 30;  // never spawn children
  return c;
}

struct DetCase {
  const char* name;
  EngineConfig (*make)();
};

using ParityParam = std::tuple<DetCase, ShardingKind>;

class ShardWorkParityTest : public ::testing::TestWithParam<ParityParam> {};

TEST_P(ShardWorkParityTest, ShardedWorkMatchesUnshardedBitForBit) {
  const auto& [det_case, kind] = GetParam();
  Graph g = Unlabeled();
  QueryGraph q = Pattern(4);
  EngineConfig base = det_case.make();
  RunResult unsharded = RunMatching(g, q, base);
  ASSERT_TRUE(unsharded.status.ok()) << unsharded.status;
  EngineConfig sharded_cfg = base;
  sharded_cfg.sharding = kind;
  sharded_cfg.num_shards = 3;
  RunResult sharded = RunMatching(g, q, sharded_cfg);
  ASSERT_TRUE(sharded.status.ok()) << sharded.status;
  EXPECT_EQ(sharded.match_count, unsharded.match_count);
  EXPECT_EQ(sharded.counters.work_units, unsharded.counters.work_units);
  EXPECT_EQ(sharded.counters.edges_scanned,
            unsharded.counters.edges_scanned);
  EXPECT_EQ(sharded.counters.initial_tasks,
            unsharded.counters.initial_tasks);
}

INSTANTIATE_TEST_SUITE_P(
    DeterministicConfigs, ShardWorkParityTest,
    ::testing::Combine(
        ::testing::Values(DetCase{"timeout", DetTimeout},
                          DetCase{"timeout_noroute", DetTimeoutNoRoute},
                          DetCase{"nosteal", DetNone},
                          DetCase{"halfsteal", DetHalfSteal},
                          DetCase{"newkernel", DetNewKernel}),
        ::testing::Values(ShardingKind::kHash, ShardingKind::kGreedy)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             ShardingKindName(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Structural and capacity properties
// ---------------------------------------------------------------------------

TEST(ShardRunnerTest, ShardingAppliesRules) {
  EngineConfig c = TdfsConfig();
  EXPECT_FALSE(shard::ShardingApplies(c));  // kOff
  c.sharding = ShardingKind::kHash;
  EXPECT_FALSE(shard::ShardingApplies(c));  // 1 effective shard
  c.num_shards = 4;
  EXPECT_TRUE(shard::ShardingApplies(c));
  const std::vector<int64_t> seeds = {0, 1};
  c.initial_edges = &seeds;
  EXPECT_FALSE(shard::ShardingApplies(c));  // caller-supplied edge space
  c.initial_edges = nullptr;
  c.num_shards = 0;
  c.num_devices = 4;
  EXPECT_TRUE(shard::ShardingApplies(c));  // falls back to num_devices
}

TEST(ShardRunnerTest, RoutingRecordsCrossShardTraffic) {
  Graph g = Unlabeled();
  QueryGraph q = Pattern(4);
  EngineConfig c = DetTimeout();
  c.sharding = ShardingKind::kHash;
  c.num_shards = 3;
  c.shard_halo_max_degree = 0;  // no halo: every boundary edge routes
  RunResult r = RunMatching(g, q, c);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_GT(r.counters.shard_cross_msgs, 0);
  int64_t routed_out = 0;
  int64_t routed_in = 0;
  for (const ShardRunStats& s : r.per_shard) {
    routed_out += s.routed_out;
    routed_in += s.routed_in;
  }
  EXPECT_EQ(routed_out, r.counters.shard_cross_msgs);
  EXPECT_EQ(routed_in, routed_out);
  // Remote reads only below the (absent) halo: the fetch meters must have
  // seen the cross-shard adjacency traffic.
  EXPECT_GT(r.counters.shard_remote_reads, 0);
  EXPECT_EQ(r.counters.shard_halo_hits, 0);
}

TEST(ShardRunnerTest, HaloAbsorbsRemoteReads) {
  Graph g = Unlabeled();
  // 4-clique: every plan position extends from position 0, so every row
  // the engine intersects belongs to a neighbor of an owned vertex — all
  // 1-hop boundary, exactly what an uncapped halo caches. (Patterns with
  // non-adjacent roots reach 2-hop rows, which no halo covers.)
  QueryGraph q = Pattern(2);
  EngineConfig c = DetTimeout();
  c.sharding = ShardingKind::kHash;
  c.num_shards = 3;
  c.shard_halo_max_degree = g.MaxDegree();  // every boundary row cached
  RunResult r = RunMatching(g, q, c);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.counters.shard_remote_reads, 0);
  EXPECT_GT(r.counters.shard_halo_hits, 0);
  // With the full halo nothing is non-resident, so nothing routes.
  EXPECT_EQ(r.counters.shard_cross_msgs, 0);
}

TEST(ShardRunnerTest, GraphOverBudgetCompletesOnlySharded) {
  // The capacity story: a per-worker graph budget that the full CSR
  // exceeds but each shard's resident slice fits. Unsharded multi-device
  // must refuse; sharded across 4 workers must complete exactly.
  Graph g = GenerateErdosRenyi(400, 6000, 11);
  QueryGraph q = Pattern(1);
  PartitionSpec spec;
  spec.kind = ShardingKind::kGreedy;
  spec.num_shards = 4;
  spec.halo_max_degree = 8;
  auto part = GraphPartition::Build(g, spec);
  int64_t max_resident = 0;
  for (int s = 0; s < 4; ++s) {
    max_resident = std::max(max_resident, part->ResidentBytes(s));
  }
  ASSERT_LT(max_resident, g.CsrBytes())
      << "graph too small for the capacity scenario";

  EngineConfig c = TdfsConfig();
  c.num_warps = 2;
  c.graph_budget_bytes = max_resident;

  EngineConfig unsharded = c;
  unsharded.num_devices = 4;
  RunResult refused = RunMatching(g, q, unsharded);
  EXPECT_EQ(refused.status.code(), StatusCode::kResourceExhausted)
      << refused.status;

  RunResult oracle = RunMatchingRef(g, q, TdfsConfig());
  ASSERT_TRUE(oracle.status.ok());

  EngineConfig sharded = c;
  sharded.sharding = ShardingKind::kGreedy;
  sharded.num_shards = 4;
  sharded.shard_halo_max_degree = 8;
  sharded.partition = part.get();  // exercises prebuilt-partition adoption
  RunResult r = RunMatching(g, q, sharded);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.match_count, oracle.match_count);

  // A budget below even one shard's footprint refuses sharded too.
  sharded.graph_budget_bytes = 1024;
  RunResult too_small = RunMatching(g, q, sharded);
  EXPECT_EQ(too_small.status.code(), StatusCode::kResourceExhausted);
}

TEST(ShardRunnerTest, NumaHintsAndPerShardStatsExported) {
  Graph g = Unlabeled();
  QueryGraph q = Pattern(4);
  EngineConfig c = DetTimeout();
  c.sharding = ShardingKind::kGreedy;
  c.num_shards = 4;
  c.numa_nodes = {0, 1};
  RunResult r = RunMatching(g, q, c);
  ASSERT_TRUE(r.status.ok()) << r.status;
  ASSERT_EQ(r.per_shard.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(r.per_shard[s].shard_id, s);
    EXPECT_EQ(r.per_shard[s].numa_node, s % 2);
    EXPECT_GT(r.per_shard[s].resident_bytes, 0);
  }
  // Per-shard stats survive the JSON export.
  const std::string json = r.ToJsonString();
  EXPECT_NE(json.find("\"per_shard\""), std::string::npos);
  EXPECT_NE(json.find("\"numa_node\""), std::string::npos);
}

TEST(ShardRunnerTest, TracedRunExportsShardGauges) {
  Graph g = Unlabeled();
  QueryGraph q = Pattern(4);
  obs::TraceSession trace;
  EngineConfig c = DetTimeout();
  c.sharding = ShardingKind::kHash;
  c.num_shards = 3;
  c.trace = &trace;
  RunResult r = RunMatching(g, q, c);
  ASSERT_TRUE(r.status.ok()) << r.status;
  const std::string json = r.ToJsonString(trace.metrics());
  EXPECT_NE(json.find("mem.shard0.arena_pages_peak"), std::string::npos);
  EXPECT_NE(json.find("mem.shard2.resident_bytes"), std::string::npos);
  EXPECT_NE(json.find("dfs.steal_probes"), std::string::npos);
}

TEST(ShardRunnerTest, StealProbesMeteredUnderHalfSteal) {
  // Satellite: randomized victim scans are counted. Probes bound
  // successes from above (every success required a probe).
  Graph g = Unlabeled();
  QueryGraph q = Pattern(4);
  EngineConfig c = StmatchConfig();
  c.num_warps = 4;
  RunResult r = RunMatching(g, q, c);
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_GE(r.counters.steal_probes, r.counters.steal_successes);
  if (r.counters.steal_attempts > 0) {
    EXPECT_GT(r.counters.steal_probes, 0);
  }
}

}  // namespace
}  // namespace tdfs
