// Tests for the SpanLedger (obs/span.h): RAII begin/end, parenting,
// track allocation, the FIFO capacity bound, SpanContext plumbing, and
// thread-safe recording from concurrent tracks.

#include "obs/span.h"

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace tdfs::obs {
namespace {

const SpanLedger::Record* FindByName(
    const std::vector<SpanLedger::Record>& records, const std::string& name) {
  for (const SpanLedger::Record& r : records) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

TEST(SpanLedgerTest, BeginEndRecordsClosedSpan) {
  SpanLedger ledger;
  const int64_t track = ledger.NewTrackId("job1");
  {
    SpanLedger::Span span = ledger.Begin("admission", track, 0, 42);
    EXPECT_TRUE(span.active());
    EXPECT_GT(span.id(), 0u);
    EXPECT_EQ(span.track(), track);
  }
  ASSERT_EQ(ledger.Size(), 1);
  const std::vector<SpanLedger::Record> records = ledger.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "admission");
  EXPECT_EQ(records[0].parent, 0u);
  EXPECT_EQ(records[0].track, track);
  EXPECT_EQ(records[0].arg, 42);
  EXPECT_GE(records[0].start_ns, 0);
  EXPECT_GE(records[0].end_ns, records[0].start_ns);
}

TEST(SpanLedgerTest, OpenSpanHasMinusOneEnd) {
  SpanLedger ledger;
  SpanLedger::Span span = ledger.Begin("engine_run", ledger.NewTrackId());
  const std::vector<SpanLedger::Record> records = ledger.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].end_ns, -1);
  span.End();
  EXPECT_GE(ledger.Records()[0].end_ns, 0);
}

TEST(SpanLedgerTest, EndIsIdempotentAndSetArgUpdates) {
  SpanLedger ledger;
  SpanLedger::Span span = ledger.Begin("merge", ledger.NewTrackId());
  span.SetArg(123);
  span.End();
  EXPECT_FALSE(span.active());
  span.End();      // no-op
  span.SetArg(7);  // inert after End
  const std::vector<SpanLedger::Record> records = ledger.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].arg, 123);
}

TEST(SpanLedgerTest, MoveTransfersOwnership) {
  SpanLedger ledger;
  SpanLedger::Span a = ledger.Begin("outer", ledger.NewTrackId());
  const uint64_t id = a.id();
  SpanLedger::Span b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_EQ(b.id(), id);
  b.End();
  EXPECT_GE(ledger.Records()[0].end_ns, 0);
}

TEST(SpanLedgerTest, ParentChildChain) {
  SpanLedger ledger;
  const int64_t track = ledger.NewTrackId("job1");
  SpanLedger::Span root = ledger.Begin("job", track);
  SpanLedger::Span child = ledger.Begin("plan_compile", track, root.id());
  child.End();
  root.End();
  const std::vector<SpanLedger::Record> records = ledger.Records();
  const SpanLedger::Record* job = FindByName(records, "job");
  const SpanLedger::Record* compile = FindByName(records, "plan_compile");
  ASSERT_NE(job, nullptr);
  ASSERT_NE(compile, nullptr);
  EXPECT_EQ(compile->parent, job->id);
}

TEST(SpanLedgerTest, TrackNamesRoundTrip) {
  SpanLedger ledger;
  const int64_t a = ledger.NewTrackId("job1");
  const int64_t b = ledger.NewTrackId();
  EXPECT_NE(a, b);
  EXPECT_EQ(ledger.TrackName(a), "job1");
  ledger.NameTrack(b, "job1/dev0");
  EXPECT_EQ(ledger.TrackName(b), "job1/dev0");
  EXPECT_EQ(ledger.NumTracks(), 2);
}

TEST(SpanLedgerTest, CapacityDropsOldestAndCounts) {
  SpanLedger::Options options;
  options.capacity = 4;
  SpanLedger ledger(options);
  const int64_t track = ledger.NewTrackId();
  for (int i = 0; i < 10; ++i) {
    ledger.Begin("s" + std::to_string(i), track);
  }
  EXPECT_EQ(ledger.Size(), 4);
  EXPECT_EQ(ledger.Dropped(), 6);
  const std::vector<SpanLedger::Record> records = ledger.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first snapshot of the survivors.
  EXPECT_EQ(records.front().name, "s6");
  EXPECT_EQ(records.back().name, "s9");
}

TEST(SpanLedgerTest, EpochReanchorsClock) {
  SpanLedger ledger;
  const int64_t before = ledger.NowNs();
  ledger.SetEpochNs(0);
  // Against epoch 0 the clock reads absolute time, far ahead of the
  // ledger-relative reading.
  EXPECT_GT(ledger.NowNs(), before);
}

TEST(SpanContextTest, NullContextIsInert) {
  SpanContext ctx;
  EXPECT_FALSE(ctx.enabled());
  SpanLedger::Span span = ctx.Begin("anything");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.End();  // still a no-op
}

TEST(SpanContextTest, BeginUsesTrackAndParent) {
  SpanLedger ledger;
  const int64_t track = ledger.NewTrackId("job1");
  SpanLedger::Span root = ledger.Begin("job", track);
  const uint64_t root_id = root.id();
  SpanContext ctx{&ledger, track, root_id};
  EXPECT_TRUE(ctx.enabled());
  SpanLedger::Span child = ctx.Begin("mem_reserve", 4096);
  child.End();
  root.End();
  const std::vector<SpanLedger::Record> records = ledger.Records();
  const SpanLedger::Record* reserve = FindByName(records, "mem_reserve");
  ASSERT_NE(reserve, nullptr);
  EXPECT_EQ(reserve->parent, root_id);
  EXPECT_EQ(reserve->track, track);
  EXPECT_EQ(reserve->arg, 4096);
}

TEST(SpanContextTest, UnderReparents) {
  SpanLedger ledger;
  const int64_t track = ledger.NewTrackId();
  SpanLedger::Span outer = ledger.Begin("plan_lookup", track);
  SpanContext ctx{&ledger, track, 0};
  SpanContext nested = ctx.Under(outer);
  EXPECT_EQ(nested.parent, outer.id());
  // Under an inert span the parent is unchanged.
  SpanLedger::Span inert;
  EXPECT_EQ(ctx.Under(inert).parent, ctx.parent);
}

TEST(SpanLedgerTest, ConcurrentTracksRecordAllSpans) {
  SpanLedger ledger;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<int64_t> tracks;
  for (int t = 0; t < kThreads; ++t) {
    tracks.push_back(ledger.NewTrackId("dev" + std::to_string(t)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, track = tracks[t]] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanLedger::Span span = ledger.Begin("work", track, 0, i);
        span.End();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(ledger.Size(), kThreads * kSpansPerThread);
  EXPECT_EQ(ledger.Dropped(), 0);
  // Per-track start timestamps are monotone (each track is written by
  // one thread).
  std::map<int64_t, int64_t> last;
  for (const SpanLedger::Record& r : ledger.Records()) {
    auto it = last.find(r.track);
    if (it != last.end()) {
      EXPECT_GE(r.start_ns, it->second);
    }
    last[r.track] = r.start_ns;
  }
}

}  // namespace
}  // namespace tdfs::obs
