#include "util/status.h"

#include <gtest/gtest.h>

namespace tdfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing graph");
  EXPECT_EQ(s.ToString(), "NotFound: missing graph");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream oss;
  oss << Status::Corruption("bad magic");
  EXPECT_EQ(oss.str(), "Corruption: bad magic");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailingOperation() { return Status::IOError("disk"); }

Status PropagatesWithMacro() {
  TDFS_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatesWithMacro().code(), StatusCode::kIOError);
}

Result<int> ProducesValue() { return 5; }

Status UsesAssignOrReturn(int* out) {
  TDFS_ASSIGN_OR_RETURN(int v, ProducesValue());
  *out = v;
  return Status::OK();
}

TEST(StatusTest, AssignOrReturnMacroAssigns) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 5);
}

TEST(StatusDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(TDFS_CHECK(false), "TDFS_CHECK failed");
}

TEST(StatusDeathTest, CheckMsgIncludesDetail) {
  EXPECT_DEATH(TDFS_CHECK_MSG(1 == 2, "custom detail " << 42),
               "custom detail 42");
}

}  // namespace
}  // namespace tdfs
