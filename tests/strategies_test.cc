#include <gtest/gtest.h>

#include "core/matcher.h"
#include "graph/generators.h"
#include "query/patterns.h"

namespace tdfs {
namespace {

// Cross-strategy equivalence (Fig. 11's four rows must agree on counts)
// plus strategy-specific behaviours.

uint64_t Oracle(const Graph& g, const QueryGraph& q) {
  RunResult r = RunMatchingRef(g, q, TdfsConfig());
  EXPECT_TRUE(r.status.ok());
  return r.match_count;
}

TEST(NoStealTest, MatchesOracle) {
  Graph g = GenerateBarabasiAlbert(200, 4, 31);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNone;
  for (int i : {1, 3, 8}) {
    RunResult r = RunMatching(g, Pattern(i), config);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.match_count, Oracle(g, Pattern(i))) << PatternName(i);
    EXPECT_EQ(r.counters.tasks_enqueued, 0);
    EXPECT_EQ(r.counters.steal_attempts, 0);
    EXPECT_EQ(r.counters.kernels_launched, 0);
  }
}

TEST(HalfStealTest, MatchesOracle) {
  Graph g = GenerateBarabasiAlbert(250, 4, 37);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kHalfSteal;
  config.num_warps = 4;
  for (int i : {1, 2, 3, 8}) {
    RunResult r = RunMatching(g, Pattern(i), config);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, Oracle(g, Pattern(i))) << PatternName(i);
  }
}

TEST(HalfStealTest, StealsHappenOnSkewedWork) {
  // A very skewed graph with few warps and small chunks: idle warps must
  // find victims.
  Graph g = GenerateBarabasiAlbert(800, 6, 41);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kHalfSteal;
  config.num_warps = 4;
  config.chunk_size = 512;  // coarse chunks create imbalance
  RunResult r = RunMatching(g, Pattern(8), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(8)));
  EXPECT_GT(r.counters.steal_attempts, 0);
  EXPECT_GT(r.counters.steal_successes, 0);
}

TEST(HalfStealTest, WithReuseEnabledStaysCorrect) {
  // Stolen slices must keep full reuse bases (limit vs size separation).
  Graph g = GenerateErdosRenyi(200, 1400, 43);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kHalfSteal;
  config.num_warps = 4;
  config.chunk_size = 256;
  config.use_reuse = true;
  RunResult r = RunMatching(g, Pattern(7), config);  // 5-clique: deep reuse
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(7)));
}

TEST(NewKernelTest, MatchesOracle) {
  Graph g = GenerateBarabasiAlbert(250, 4, 47);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNewKernel;
  config.newkernel_launch_overhead_ns = 0;  // keep tests fast
  for (int i : {1, 3, 8}) {
    RunResult r = RunMatching(g, Pattern(i), config);
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.match_count, Oracle(g, Pattern(i))) << PatternName(i);
  }
}

TEST(NewKernelTest, LowThresholdSpawnsKernels) {
  Graph g = GenerateBarabasiAlbert(400, 5, 53);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNewKernel;
  config.newkernel_fanout_threshold = 4;  // fire on almost any fanout
  config.newkernel_child_warps = 2;
  config.newkernel_launch_overhead_ns = 0;
  RunResult r = RunMatching(g, Pattern(3), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(3)));
  EXPECT_GT(r.counters.kernels_launched, 0);
  EXPECT_GT(r.counters.child_warps_launched, 0);
}

TEST(NewKernelTest, KernelBudgetCapsSpawns) {
  Graph g = GenerateBarabasiAlbert(400, 5, 53);
  EngineConfig config = TdfsConfig();
  config.steal = StealStrategy::kNewKernel;
  config.newkernel_fanout_threshold = 4;
  config.newkernel_max_kernels = 3;
  config.newkernel_launch_overhead_ns = 0;
  RunResult r = RunMatching(g, Pattern(3), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(3)));
  EXPECT_LE(r.counters.kernels_launched, 3);
}

TEST(NewKernelTest, ChildStacksInflateMemoryFootprint) {
  Graph g = GenerateBarabasiAlbert(400, 5, 59);
  EngineConfig baseline = TdfsConfig();
  baseline.steal = StealStrategy::kNone;
  baseline.stack = StackKind::kArrayMaxDegree;
  EngineConfig newkernel = baseline;
  newkernel.steal = StealStrategy::kNewKernel;
  newkernel.newkernel_fanout_threshold = 4;
  newkernel.newkernel_launch_overhead_ns = 0;
  RunResult rb = RunMatching(g, Pattern(3), baseline);
  RunResult rn = RunMatching(g, Pattern(3), newkernel);
  ASSERT_TRUE(rb.status.ok());
  ASSERT_TRUE(rn.status.ok());
  ASSERT_GT(rn.counters.kernels_launched, 0);
  EXPECT_GT(rn.counters.stack_bytes_peak, rb.counters.stack_bytes_peak);
}

TEST(EgsmPresetTest, CountsEveryAutomorphicImage) {
  // EGSM does no automorphism breaking, so its count is |Aut| times the
  // symmetry-broken one (how the paper explains EGSM's slowness in IV-B).
  Graph g = GenerateErdosRenyi(120, 480, 61);
  EngineConfig egsm = EgsmConfig();
  egsm.newkernel_launch_overhead_ns = 0;
  RunResult re = RunMatching(g, Pattern(1), egsm);
  ASSERT_TRUE(re.status.ok());
  EXPECT_EQ(re.match_count, Oracle(g, Pattern(1)) * 4);  // diamond |Aut|=4
}

TEST(EgsmPresetTest, LabelIndexPathMatchesCsrPath) {
  Graph g = GenerateErdosRenyi(200, 1000, 67);
  g.AssignUniformLabels(4, 5);
  QueryGraph q = Pattern(13);  // labeled 4-clique (|Aut| = 1)
  EngineConfig with_index = EgsmConfig();
  with_index.newkernel_launch_overhead_ns = 0;
  EngineConfig without_index = with_index;
  without_index.use_label_index = false;
  RunResult ri = RunMatching(g, q, with_index);
  RunResult rc = RunMatching(g, q, without_index);
  ASSERT_TRUE(ri.status.ok());
  ASSERT_TRUE(rc.status.ok());
  EXPECT_EQ(ri.match_count, rc.match_count);
}

TEST(EgsmPresetTest, OomModelTripsOnTinyBudget) {
  Graph g = GenerateErdosRenyi(300, 2000, 71);
  g.AssignUniformLabels(4, 5);
  EngineConfig config = EgsmConfig();
  config.device_memory_budget_bytes = 1024;  // absurdly small
  RunResult r = RunMatching(g, Pattern(13), config);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
}

TEST(StmatchPresetTest, MatchesOracleAndChargesPreprocessing) {
  Graph g = GenerateBarabasiAlbert(200, 4, 73);
  EngineConfig config = StmatchConfig();
  config.num_warps = 4;
  RunResult r = RunMatching(g, Pattern(2), config);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.match_count, Oracle(g, Pattern(2)));
  EXPECT_GE(r.counters.preprocess_ms, 0.0);
}

TEST(MakespanTest, MaxWarpWorkBoundedByTotal) {
  Graph g = GenerateBarabasiAlbert(300, 4, 83);
  for (StealStrategy s : {StealStrategy::kTimeout, StealStrategy::kNone}) {
    EngineConfig config = TdfsConfig();
    config.steal = s;
    config.num_warps = 4;
    RunResult r = RunMatching(g, Pattern(3), config);
    ASSERT_TRUE(r.status.ok());
    EXPECT_GT(r.counters.max_warp_work_units, 0u);
    EXPECT_LE(r.counters.max_warp_work_units, r.counters.work_units);
    EXPECT_LE(r.SimulatedGpuMs(), r.match_ms * 1.0001);
  }
}

TEST(MakespanTest, TimeoutBalancesBetterThanNoStealOnStragglers) {
  // The paper's core claim, in work-share form: on a skewed graph with a
  // straggler-heavy pattern, timeout decomposition spreads work across
  // warps while No Steal leaves one warp holding most of it. The busiest
  // warp's share of total work must be measurably smaller with stealing.
  Graph g = GenerateBarabasiAlbert(2000, 5, 89);
  EngineConfig timeout = TdfsConfig();
  timeout.num_warps = 8;
  timeout.clock = ClockKind::kVirtual;
  timeout.timeout_work_units = 20'000;
  EngineConfig nosteal = timeout;
  nosteal.steal = StealStrategy::kNone;
  // Coarse chunks make the initial distribution lumpy.
  timeout.chunk_size = 2048;
  nosteal.chunk_size = 2048;
  RunResult rt = RunMatching(g, Pattern(8), timeout);
  RunResult rn = RunMatching(g, Pattern(8), nosteal);
  ASSERT_TRUE(rt.status.ok());
  ASSERT_TRUE(rn.status.ok());
  ASSERT_EQ(rt.match_count, rn.match_count);
  const double share_timeout =
      static_cast<double>(rt.counters.max_warp_work_units) /
      static_cast<double>(rt.counters.work_units);
  const double share_nosteal =
      static_cast<double>(rn.counters.max_warp_work_units) /
      static_cast<double>(rn.counters.work_units);
  EXPECT_LT(share_timeout, share_nosteal);
}

TEST(StrategiesAgreeTest, AllFourStrategiesSameCount) {
  Graph g = GenerateBarabasiAlbert(300, 4, 79);
  const uint64_t expected = Oracle(g, Pattern(9));
  for (StealStrategy s :
       {StealStrategy::kTimeout, StealStrategy::kHalfSteal,
        StealStrategy::kNewKernel, StealStrategy::kNone}) {
    EngineConfig config = TdfsConfig();
    config.steal = s;
    config.num_warps = 4;
    config.newkernel_launch_overhead_ns = 0;
    config.clock = ClockKind::kVirtual;
    config.timeout_work_units = 2048;
    RunResult r = RunMatching(g, Pattern(9), config);
    ASSERT_TRUE(r.status.ok()) << StealStrategyName(s);
    EXPECT_EQ(r.match_count, expected) << StealStrategyName(s);
  }
}

}  // namespace
}  // namespace tdfs
