#include "queue/task_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace tdfs {
namespace {

TEST(TaskQueueTest, StartsEmpty) {
  TaskQueue q(30);
  EXPECT_EQ(q.ApproxSize(), 0);
  Task t;
  EXPECT_FALSE(q.Dequeue(&t));
}

TEST(TaskQueueTest, FifoOrderSingleThreaded) {
  TaskQueue q(30);
  for (VertexId i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Enqueue(Task{i, i + 100, i + 200}));
  }
  EXPECT_EQ(q.ApproxSize(), 5);
  for (VertexId i = 0; i < 5; ++i) {
    Task t;
    ASSERT_TRUE(q.Dequeue(&t));
    EXPECT_EQ(t.v1, i);
    EXPECT_EQ(t.v2, i + 100);
    EXPECT_EQ(t.v3, i + 200);
  }
  EXPECT_EQ(q.ApproxSize(), 0);
}

TEST(TaskQueueTest, TwoVertexTasksUsePlaceholder) {
  TaskQueue q(30);
  ASSERT_TRUE(q.Enqueue(Task{3, 7, kNoThirdVertex}));
  Task t;
  ASSERT_TRUE(q.Dequeue(&t));
  EXPECT_EQ(t.v1, 3);
  EXPECT_EQ(t.v2, 7);
  EXPECT_FALSE(t.HasThird());
}

TEST(TaskQueueTest, FullQueueRejectsEnqueue) {
  TaskQueue q(9);  // 3 tasks
  EXPECT_TRUE(q.Enqueue(Task{1, 1, 1}));
  EXPECT_TRUE(q.Enqueue(Task{2, 2, 2}));
  EXPECT_TRUE(q.Enqueue(Task{3, 3, 3}));
  EXPECT_FALSE(q.Enqueue(Task{4, 4, 4}));
  EXPECT_EQ(q.EnqueueFullFailures(), 1);
  // Dequeue one, enqueue succeeds again.
  Task t;
  ASSERT_TRUE(q.Dequeue(&t));
  EXPECT_TRUE(q.Enqueue(Task{4, 4, 4}));
}

TEST(TaskQueueTest, WrapsAroundRingBoundary) {
  TaskQueue q(9);  // 3 tasks
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(q.Enqueue(Task{round, round + 1, round + 2}));
    ASSERT_TRUE(q.Enqueue(Task{round, round + 1, kNoThirdVertex}));
    Task a;
    Task b;
    ASSERT_TRUE(q.Dequeue(&a));
    ASSERT_TRUE(q.Dequeue(&b));
    EXPECT_EQ(a.v1, round);
    EXPECT_EQ(a.v3, round + 2);
    EXPECT_FALSE(b.HasThird());
  }
}

TEST(TaskQueueTest, StatsCountTraffic) {
  TaskQueue q(30);
  q.Enqueue(Task{1, 2, 3});
  q.Enqueue(Task{4, 5, 6});
  Task t;
  q.Dequeue(&t);
  EXPECT_EQ(q.TotalEnqueued(), 2);
  EXPECT_EQ(q.TotalDequeued(), 1);
  EXPECT_EQ(q.PeakSizeInts(), 6);
  q.ResetStats();
  EXPECT_EQ(q.TotalEnqueued(), 0);
  EXPECT_EQ(q.PeakSizeInts(), 0);
}

TEST(TaskQueueTest, DefaultCapacityMatchesPaper) {
  EXPECT_EQ(TaskQueue::kDefaultCapacityInts, 3'000'000);
}

TEST(TaskQueueDeathTest, CapacityMustBeMultipleOfThree) {
  EXPECT_DEATH(TaskQueue(10), "multiple of 3");
  EXPECT_DEATH(TaskQueue(0), "multiple of 3");
}

// Concurrency: N producers and M consumers; every enqueued task must be
// dequeued exactly once (conservation), even under wraparound pressure.
TEST(TaskQueueStressTest, ManyProducersManyConsumersConserveTasks) {
  TaskQueue q(3 * 64);  // small ring to force wraparound and contention
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kTasksPerProducer = 10000;

  std::atomic<int64_t> produced{0};
  std::atomic<int64_t> consumed{0};
  std::atomic<int64_t> checksum{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, &produced, &checksum, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        const VertexId v1 = p * kTasksPerProducer + i;
        Task task{v1, v1 + 1, i % 2 == 0 ? v1 + 2 : kNoThirdVertex};
        while (!q.Enqueue(task)) {
          std::this_thread::yield();
        }
        produced.fetch_add(1, std::memory_order_relaxed);
        checksum.fetch_add(v1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, &consumed, &checksum, &producers_done] {
      Task t;
      while (true) {
        if (q.Dequeue(&t)) {
          // Validate intra-task integrity: slots must not be torn apart.
          EXPECT_EQ(t.v2, t.v1 + 1);
          if (t.HasThird()) {
            EXPECT_EQ(t.v3, t.v1 + 2);
          }
          consumed.fetch_add(1, std::memory_order_relaxed);
          checksum.fetch_sub(t.v1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire)) {
          if (!q.Dequeue(&t)) {
            return;
          }
          EXPECT_EQ(t.v2, t.v1 + 1);
          consumed.fetch_add(1, std::memory_order_relaxed);
          checksum.fetch_sub(t.v1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  producers_done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) {
    threads[kProducers + c].join();
  }

  EXPECT_EQ(produced.load(), kProducers * kTasksPerProducer);
  EXPECT_EQ(consumed.load(), produced.load());
  EXPECT_EQ(checksum.load(), 0) << "task payloads lost or duplicated";
  EXPECT_EQ(q.ApproxSize(), 0);
  EXPECT_EQ(q.TotalEnqueued(), q.TotalDequeued());
}

// The full-queue/empty-queue boundary under concurrency: with capacity 1
// task, producers and consumers collide on the same slot triple, which is
// exactly the case the CAS/exchange hand-off protects (Alg. 3's "when the
// queue is full, front and back point to the same element").
TEST(TaskQueueStressTest, SingleSlotRingHandoff) {
  TaskQueue q(3);
  constexpr int kTasks = 20000;
  std::thread producer([&q] {
    for (VertexId i = 0; i < kTasks; ++i) {
      while (!q.Enqueue(Task{i, i, i})) {
        std::this_thread::yield();
      }
    }
  });
  int64_t sum = 0;
  int received = 0;
  Task t;
  while (received < kTasks) {
    if (q.Dequeue(&t)) {
      EXPECT_EQ(t.v1, t.v2);
      EXPECT_EQ(t.v1, t.v3);
      sum += t.v1;
      ++received;
    } else {
      // Polling etiquette matters on small machines: with exact admission
      // a producer is never admitted early just to park inside the queue,
      // so an empty poll that never yields can pin the only core for a
      // full scheduler slice per hand-off.
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, int64_t{kTasks} * (kTasks - 1) / 2);
}

// Regression for the phantom-admit hang and occupancy overshoot: the old
// add-then-rollback admission let `size_` transiently exceed capacity
// while enqueues raced on a full queue, which (a) produced occupancy
// samples beyond the ring's real range and (b) could admit a dequeue
// against a failing enqueue's +3 — that dequeue then spun waiting for a
// slot fill no producer owed. Admission is now an exact CAS loop, so the
// hostile shutdown order (producers first, consumer drains a queue nobody
// refills) must terminate, and samples must stay within capacity with no
// clamping involved.
TEST(TaskQueueStressTest, ProducersFirstShutdownAndExactOccupancy) {
  constexpr int32_t kCapacityInts = 12;  // 4 tasks
  TaskQueue q(kCapacityInts);
  obs::Histogram occupancy;
  q.AttachObs(&occupancy);

  // Producers hammer a mostly-full queue in tight loops — deliberately no
  // yield, so involuntary preemption lands inside the enqueue/dequeue
  // windows and admission races are maximally exercised.
  constexpr int kProducers = 8;
  std::atomic<bool> stop_producers{false};
  std::atomic<bool> stop_consumer{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &stop_producers] {
      while (!stop_producers.load(std::memory_order_relaxed)) {
        q.Enqueue(Task{1, 2, 3});
      }
    });
  }
  // One consumer keeps the queue hovering at the full boundary, where
  // admitted and rejected enqueues interleave.
  std::thread consumer([&q, &stop_consumer] {
    Task t;
    while (!stop_consumer.load(std::memory_order_relaxed)) {
      q.Dequeue(&t);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  // The previously hanging order: stop the producers FIRST, then let the
  // consumer drain whatever is admitted. With exact admission every
  // admitted task has a producer that already incremented size_ and will
  // complete its slot fill, so the consumer cannot get stuck.
  stop_producers.store(true, std::memory_order_relaxed);
  for (auto& th : producers) {
    th.join();
  }
  Task t;
  while (q.Dequeue(&t)) {
  }
  stop_consumer.store(true, std::memory_order_relaxed);
  consumer.join();

  EXPECT_GT(occupancy.Count(), 0);
  EXPECT_LE(occupancy.Max(), kCapacityInts / 3)
      << "occupancy sample exceeded queue capacity";
  EXPECT_LE(q.PeakSizeInts(), kCapacityInts)
      << "peak-size stat exceeded queue capacity";
  EXPECT_EQ(q.ApproxSize(), 0);
}

TEST(TaskQueueTest, DrainForReuseRewindsRingTickets) {
  TaskQueue q(30);
  // Advance both tickets off origin: 4 enqueues, 2 dequeues, then a drain.
  for (VertexId i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.Enqueue(Task{i, i, i}));
  }
  Task t;
  ASSERT_TRUE(q.Dequeue(&t));
  ASSERT_TRUE(q.Dequeue(&t));
  EXPECT_EQ(q.DrainForReuse(), 2);
  // Scrub restores the pristine ring: tickets at 0, so the next run's
  // traffic lands on the same slots as a cold queue's.
  EXPECT_EQ(q.FrontTicket(), 0);
  EXPECT_EQ(q.BackTicket(), 0);
  EXPECT_EQ(q.ApproxSize(), 0);
  ASSERT_TRUE(q.Enqueue(Task{42, 42, 42}));
  EXPECT_EQ(q.BackTicket(), 3);
  ASSERT_TRUE(q.Dequeue(&t));
  EXPECT_EQ(t.v1, 42);
  EXPECT_EQ(q.FrontTicket(), 3);
}

TEST(TaskQueueTest, DrainForReuseDiscardsLeftoverTasks) {
  TaskQueue q(30);
  for (VertexId i = 0; i < 7; ++i) {
    ASSERT_TRUE(q.Enqueue(Task{i, i, i}));
  }
  EXPECT_EQ(q.DrainForReuse(), 7);
  EXPECT_EQ(q.ApproxSize(), 0);
  Task t;
  EXPECT_FALSE(q.Dequeue(&t));
  // The drained ring is immediately reusable.
  EXPECT_TRUE(q.Enqueue(Task{9, 9, 9}));
  ASSERT_TRUE(q.Dequeue(&t));
  EXPECT_EQ(t.v1, 9);
}

TEST(TaskQueueTest, PeakSizeTracksHighWaterMark) {
  TaskQueue q(30);
  for (int i = 0; i < 8; ++i) {
    q.Enqueue(Task{1, 2, 3});
  }
  Task t;
  for (int i = 0; i < 8; ++i) {
    q.Dequeue(&t);
  }
  EXPECT_EQ(q.PeakSizeInts() / 3, 8);
}

}  // namespace
}  // namespace tdfs
