#include "mem/warp_stack.h"

#include <gtest/gtest.h>

namespace tdfs {
namespace {

TEST(PagedWarpStackTest, SetGetWithinOnePage) {
  PageAllocator alloc(8, 128);  // 32 ints per page
  PagedWarpStack stack(&alloc, 3);
  for (int64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(stack.Set(0, i, static_cast<VertexId>(i * 7)));
  }
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(stack.Get(0, i), i * 7);
  }
  EXPECT_EQ(stack.PagesHeld(), 1);
}

TEST(PagedWarpStackTest, CrossPageBoundaryWrites) {
  PageAllocator alloc(8, 128);  // 32 ints per page
  PagedWarpStack stack(&alloc, 2);
  // Positions 16..47 straddle pages 0 and 1 — the Fig. 6 scenario.
  for (int64_t i = 16; i < 48; ++i) {
    ASSERT_TRUE(stack.Set(1, i, static_cast<VertexId>(1000 + i)));
  }
  for (int64_t i = 16; i < 48; ++i) {
    EXPECT_EQ(stack.Get(1, i), 1000 + i);
  }
  EXPECT_EQ(stack.PagesHeld(), 2);
}

TEST(PagedWarpStackTest, LevelsAreIndependent) {
  PageAllocator alloc(8, 128);
  PagedWarpStack stack(&alloc, 4);
  for (int level = 0; level < 4; ++level) {
    ASSERT_TRUE(stack.Set(level, 5, 100 + level));
  }
  for (int level = 0; level < 4; ++level) {
    EXPECT_EQ(stack.Get(level, 5), 100 + level);
  }
  EXPECT_EQ(stack.PagesHeld(), 4);
}

TEST(PagedWarpStackTest, PagesAllocatedLazily) {
  PageAllocator alloc(8, 128);
  PagedWarpStack stack(&alloc, 4);
  EXPECT_EQ(stack.PagesHeld(), 0);
  EXPECT_EQ(alloc.PagesInUse(), 0);
  stack.Set(2, 0, 1);
  EXPECT_EQ(stack.PagesHeld(), 1);
  EXPECT_EQ(alloc.PagesInUse(), 1);
}

TEST(PagedWarpStackTest, OverflowWhenPoolExhausted) {
  PageAllocator alloc(1, 128);
  PagedWarpStack stack(&alloc, 2);
  EXPECT_TRUE(stack.Set(0, 0, 1));
  EXPECT_FALSE(stack.overflowed());
  // Second level needs a second page; the pool has none.
  EXPECT_FALSE(stack.Set(1, 0, 2));
  EXPECT_TRUE(stack.overflowed());
}

TEST(PagedWarpStackTest, OverflowWhenPageTableSpanExceeded) {
  PageAllocator alloc(8, 128);  // 32 ints/page
  PagedWarpStack stack(&alloc, 1, /*page_table_capacity=*/2);
  EXPECT_EQ(stack.LevelCapacity(), 64);
  EXPECT_TRUE(stack.Set(0, 63, 9));
  EXPECT_FALSE(stack.Set(0, 64, 9));
  EXPECT_TRUE(stack.overflowed());
}

TEST(PagedWarpStackTest, ReleaseAllReturnsPages) {
  PageAllocator alloc(8, 128);
  {
    PagedWarpStack stack(&alloc, 3);
    stack.Set(0, 0, 1);
    stack.Set(1, 0, 2);
    EXPECT_EQ(alloc.PagesInUse(), 2);
    stack.ReleaseAll();
    EXPECT_EQ(alloc.PagesInUse(), 0);
    EXPECT_EQ(stack.PagesHeld(), 0);
    // Stack remains usable after release.
    EXPECT_TRUE(stack.Set(0, 0, 3));
    EXPECT_EQ(alloc.PagesInUse(), 1);
  }
  // Destructor releases too.
  EXPECT_EQ(alloc.PagesInUse(), 0);
}

TEST(PagedWarpStackTest, MemoryBytesCountsPagesAndTables) {
  PageAllocator alloc(8, 128);
  PagedWarpStack stack(&alloc, 2, 4);
  const int64_t tables = 2 * 4 * static_cast<int64_t>(sizeof(PageId));
  EXPECT_EQ(stack.MemoryBytes(), tables);
  stack.Set(0, 0, 1);
  EXPECT_EQ(stack.MemoryBytes(), 128 + tables);
}

TEST(PagedWarpStackTest, MoveTransfersOwnership) {
  PageAllocator alloc(8, 128);
  PagedWarpStack a(&alloc, 2);
  a.Set(0, 3, 42);
  PagedWarpStack b(std::move(a));
  EXPECT_EQ(b.Get(0, 3), 42);
  EXPECT_EQ(b.PagesHeld(), 1);
  EXPECT_EQ(alloc.PagesInUse(), 1);  // not double-freed by a's destructor
}

TEST(PagedWarpStackDeathTest, ReadOfUnallocatedPageAborts) {
  PageAllocator alloc(8, 128);
  PagedWarpStack stack(&alloc, 2);
  EXPECT_DEATH(stack.Get(0, 0), "unallocated");
}

TEST(ArrayWarpStackTest, SetGetRoundTrip) {
  ArrayWarpStack stack(3, 100);
  for (int level = 0; level < 3; ++level) {
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(stack.Set(level, i, static_cast<VertexId>(level * 1000 + i)));
    }
  }
  for (int level = 0; level < 3; ++level) {
    for (int64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(stack.Get(level, i), level * 1000 + i);
    }
  }
}

TEST(ArrayWarpStackTest, OverflowBeyondCapacity) {
  // The STMatch failure mode: hardcoded capacity silently truncates (the
  // engine records the sticky flag and the paper shows the wrong counts).
  ArrayWarpStack stack(2, 8);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(stack.Set(0, i, 1));
  }
  EXPECT_FALSE(stack.overflowed());
  EXPECT_FALSE(stack.Set(0, 8, 1));
  EXPECT_TRUE(stack.overflowed());
}

TEST(ArrayWarpStackTest, MemoryBytesIsFullAllocation) {
  ArrayWarpStack stack(5, 4096);
  EXPECT_EQ(stack.MemoryBytes(),
            5 * 4096 * static_cast<int64_t>(sizeof(VertexId)));
}

TEST(ArrayWarpStackTest, LevelCapacity) {
  ArrayWarpStack stack(2, 77);
  EXPECT_EQ(stack.LevelCapacity(), 77);
}

TEST(PagedWarpStackTest, MaybeShrinkFreesTailPagesWhenSparselyUsed) {
  PageAllocator alloc(64, 128);  // 32 ints per page
  PagedWarpStack stack(&alloc, 2);
  // Fill 8 pages of level 0.
  for (int64_t i = 0; i < 8 * 32; ++i) {
    ASSERT_TRUE(stack.Set(0, i, 1));
  }
  ASSERT_EQ(stack.PagesInLevel(0), 8);
  // A new extension uses only 40 elements = 2 pages <= 8/4: tail half
  // (4 pages) becomes releasable.
  const int64_t freed = stack.MaybeShrinkLevel(0, 40);
  EXPECT_EQ(freed, 4);
  EXPECT_EQ(stack.PagesInLevel(0), 4);
  // The kept pages still hold the live data.
  for (int64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(stack.Get(0, i), 1);
  }
}

TEST(PagedWarpStackTest, MaybeShrinkNoOpWhenWellUsed) {
  PageAllocator alloc(64, 128);
  PagedWarpStack stack(&alloc, 1);
  for (int64_t i = 0; i < 4 * 32; ++i) {
    ASSERT_TRUE(stack.Set(0, i, 1));
  }
  // 3 of 4 pages used: above the quarter threshold.
  EXPECT_EQ(stack.MaybeShrinkLevel(0, 3 * 32), 0);
  EXPECT_EQ(stack.PagesInLevel(0), 4);
  // Fewer than 4 pages held: heuristic never fires.
  PagedWarpStack small(&alloc, 1);
  small.Set(0, 0, 1);
  EXPECT_EQ(small.MaybeShrinkLevel(0, 0), 0);
}

TEST(WarpStackComparisonTest, PagedUsesLessMemoryThanDmaxArrays) {
  // A graph with d_max = 8192 but small actual candidate sets: the paged
  // stack touches one page per level; the array stack preallocates d_max
  // per level (Tables V/VII).
  PageAllocator alloc(64, 8192);
  PagedWarpStack paged(&alloc, 5);
  ArrayWarpStack array(5, 8192);
  for (int level = 0; level < 5; ++level) {
    for (int64_t i = 0; i < 50; ++i) {
      paged.Set(level, i, 1);
      array.Set(level, i, 1);
    }
  }
  EXPECT_LT(paged.MemoryBytes(), array.MemoryBytes() / 3);
}

}  // namespace
}  // namespace tdfs
