#!/usr/bin/env python3
"""Diff two TDFS bench JSON files and flag regressions.

Every bench binary can record its table through the TDFS_BENCH_JSON
recorder (bench/harness.h): one document per run with a list of cells,
each keyed by (group, row, col) and carrying the formatted cell text plus
the full RunResult. This tool compares two such documents cell by cell:

    tools/bench_diff.py baseline.json candidate.json
    tools/bench_diff.py --threshold 5 old.json new.json

A cell regresses when its metric moves in the *bad* direction by more
than the threshold (default 10%). Direction is inferred from the column
name: latency-like columns (``*_ms``, ``*_ns``, ``*_us``, ``wall``,
``time``) regress upward, rate-like columns (``*_per_s``, ``*qps``,
``jobs``, ``throughput``, ``matches_per_s``) regress downward. Columns
with no recognizable direction are reported when they move either way
but never fail the run. Cells present on only one side are reported as
added/removed and do not fail the run.

Exit status: 0 = no regressions, 1 = at least one regression,
2 = usage/parse error.
"""

import argparse
import json
import sys

LOWER_IS_BETTER = ("_ms", "_ns", "_us", "ms", "wall", "time", "latency")
HIGHER_IS_BETTER = ("per_s", "qps", "jobs", "throughput", "rate", "speedup",
                    "prune")


def axis_direction(name):
    """-1: lower is better, +1: higher is better, 0: no signal."""
    name = name.lower()
    for token in HIGHER_IS_BETTER:
        if token in name:
            return 1
    for token in LOWER_IS_BETTER:
        if name.endswith(token) or token in name:
            return -1
    return 0


def direction(row, col):
    """Direction of a cell: the column names the metric in most tables
    (cols like ``wall_ms``), but ablation tables transpose that — cols are
    fixture/pattern names and the metric lives in the row (``speedup``,
    ``v_prune``). Prefer the column's signal, fall back to the row's."""
    return axis_direction(col) or axis_direction(row)


def parse_number(text):
    """The formatted cell text, as a float; None for 'T'/'OOM'/etc."""
    try:
        return float(str(text).strip().rstrip("%"))
    except ValueError:
        return None


def load_cells(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    cells = {}
    for cell in doc.get("cells", []):
        key = (cell.get("group", ""), cell.get("row", ""), cell.get("col", ""))
        cells[key] = cell
    if not cells:
        sys.exit(f"bench_diff: {path} has no cells")
    return doc.get("experiment", "?"), cells


def main():
    parser = argparse.ArgumentParser(
        description="Diff two TDFS bench JSON files; flag regressions.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    args = parser.parse_args()

    base_name, base = load_cells(args.baseline)
    cand_name, cand = load_cells(args.candidate)
    if base_name != cand_name:
        print(f"note: comparing different experiments "
              f"({base_name} vs {cand_name})")

    regressions = []
    improvements = []
    infos = []
    for key in sorted(set(base) | set(cand)):
        group, row, col = key
        label = f"{group}/{row}/{col}"
        if key not in base:
            infos.append(f"added:   {label} = {cand[key].get('text')}")
            continue
        if key not in cand:
            infos.append(f"removed: {label} (was {base[key].get('text')})")
            continue
        old = parse_number(base[key].get("text"))
        new = parse_number(cand[key].get("text"))
        if old == 0:
            # A zero baseline has no meaningful relative delta (and would
            # divide by zero below): flag the cell explicitly instead of
            # silently dropping it, so a table full of zeros cannot pass
            # as "no regressions" unnoticed.
            infos.append(f"skipped: {label} zero baseline "
                         f"({base[key].get('text')} -> "
                         f"{cand[key].get('text')})")
            continue
        if old is None or new is None:
            if base[key].get("text") != cand[key].get("text"):
                infos.append(f"changed: {label} "
                             f"{base[key].get('text')} -> "
                             f"{cand[key].get('text')}")
            continue
        delta_pct = 100.0 * (new - old) / abs(old)
        line = f"{label} {old:g} -> {new:g} ({delta_pct:+.1f}%)"
        d = direction(row, col)
        bad = (d < 0 and delta_pct > args.threshold) or \
              (d > 0 and delta_pct < -args.threshold)
        good = (d < 0 and delta_pct < -args.threshold) or \
               (d > 0 and delta_pct > args.threshold)
        if bad:
            regressions.append(line)
        elif good:
            improvements.append(line)
        elif d == 0 and abs(delta_pct) > args.threshold:
            infos.append(f"moved:   {line}")

    for line in infos:
        print(line)
    for line in improvements:
        print(f"improved:  {line}")
    for line in regressions:
        print(f"REGRESSED: {line}")
    if regressions:
        print(f"bench_diff: {len(regressions)} regression(s) beyond "
              f"{args.threshold:g}%")
        return 1
    print(f"bench_diff: no regressions beyond {args.threshold:g}% "
          f"({len(base)} baseline cells, {len(cand)} candidate cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
