// tdfs — command-line front end to the library.
//
//   tdfs generate --type <er|ba|hubba|rmat|pp> --out G.txt [options]
//   tdfs dataset  --name <youtube|pokec|...>   --out G.txt
//   tdfs stats    --graph G.txt
//   tdfs match    --graph G.txt (--pattern P3 | --query Q.txt)
//                 [--engine tdfs|stmatch|egsm|pbe|hybrid|ref]
//                 [--warps N] [--devices D] [--tau MS] [--budget-ms MS]
//   tdfs kclique  --graph G.txt --k 4
//   tdfs mce      --graph G.txt
//
// Graphs are SNAP-style edge lists ("u v" per line); queries use the
// format of query/query_io.h. Run `tdfs help` for this text.

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/kclique.h"
#include "apps/mce.h"
#include "core/hybrid_engine.h"
#include "core/matcher.h"
#include "dyn/dynamic_graph.h"
#include "dyn/graph_delta.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "mem/memory_governor.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "query/patterns.h"
#include "query/query_io.h"
#include "service/match_service.h"
#include "util/prng.h"
#include "util/timer.h"

namespace tdfs::cli {
namespace {

// --key value argument map; positional args rejected.
class Args {
 public:
  static Result<Args> Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        return Status::InvalidArgument("expected --flag, got '" + key + "'");
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + key);
      }
      args.values_[key.substr(2)] = argv[++i];
    }
    return args;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetOr(const std::string& key,
                    const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  Result<std::string> Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return Status::InvalidArgument("missing required flag --" + key);
    }
    return it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

// "64M", "2g", "1048576" -> bytes. K/M/G suffixes are binary (1024^n).
Result<int64_t> ParseByteSize(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty byte size");
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) {
    return Status::InvalidArgument("bad byte size '" + text + "'");
  }
  int64_t scale = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': scale = int64_t{1} << 10; break;
      case 'm': case 'M': scale = int64_t{1} << 20; break;
      case 'g': case 'G': scale = int64_t{1} << 30; break;
      default:
        return Status::InvalidArgument("bad byte suffix '" + text +
                                       "' (want K, M, or G)");
    }
  }
  return static_cast<int64_t>(value * static_cast<double>(scale));
}

void PrintUsage() {
  std::cout <<
      R"(tdfs — depth-first subgraph matching (T-DFS reproduction)

  tdfs generate --type <er|ba|hubba|rmat|pp> --out G.txt
        er:    --vertices N --edges M [--seed S]
        ba:    --vertices N --attach M [--seed S]
        hubba: --vertices N --attach M --hubs H --hub-degree D [--seed S]
        rmat:  --vertices N --edges M [--a 0.57 --b 0.19 --c 0.19] [--seed S]
        pp:    --vertices N --communities C --p-in P --p-out Q [--seed S]
  tdfs dataset --name <amazon|dblp|youtube|...> --out G.txt
  tdfs stats   --graph G.txt
  tdfs match   --graph G.txt (--pattern P1..P22 | --query Q.txt)
               [--engine tdfs|stmatch|egsm|pbe|hybrid|ref] [--warps N]
               [--devices D] [--tau MS] [--tau-units U] [--budget-ms MS]
               [--labels L] [--induced 1]
               [--intersect auto|scalar|simd|bitmap-off]
               [--bitmap-min-degree D]  hub threshold for --intersect auto
               [--planner greedy|cost]  matching-order selection: greedy
                                   degree heuristic, or cost-based search
                                   over data-graph statistics with
                                   per-step backend choices
               [--prefilter off|ldf|neighborhood]  candidate prefiltering:
                                   LDF (label + degree) seeding, optionally
                                   refined by neighborhood-safety pruning;
                                   the engine then runs on the
                                   candidate-induced subgraph
               [--sharding off|hash|greedy]  partitioned execution: each
                   worker owns a shard CSR + private arena/queue; counts
                   stay bit-identical to the shared-CSR run
               [--num-shards S]    shard count (default: --devices)
               [--halo-degree D]   cache boundary vertices of degree <= D
                   in the shard halo (0 disables halos)
               [--numa 0,1,...]    per-shard NUMA node hints
               [--graph-budget B]  per-shard resident budget, e.g. 512M
               [--pages N]         page-arena size (paged stacks)
               [--spill on|off]    host spill tier when the arena is dry
               [--max-spill-pages N] spill ceiling (0 = 32x arena)
               [--mem-budget B]    global memory budget, e.g. 64M, 2G
                                   (0/unset = governor inert)
               [--json out.json | -]   machine-readable run result
               [--trace-out trace.json] Perfetto/chrome://tracing timeline
               [--flame-out flame.txt | -] collapsed-stack per-cell wall
                                   time (feed to flamegraph.pl)
  tdfs batch   --graph G.txt --queries batch.txt
               [--engine tdfs|stmatch|egsm] [--workers W] [--warps N]
               [--devices D] [--deadline-ms MS] [--retries K]
               [--max-pending J] [--cache-capacity C] [--labels L]
               [--out results.json | -]
               [--trace-out trace.json] service spans + warp events
        batch.txt: one query per line — a pattern name (P1..P22) or a
        path to a query file; '#' starts a comment. Jobs run through the
        match service (plan cache + reusable engine arenas + async
        worker pool); results stream out as a JSON array in input order.
        --trace-out merges every job's service-stage spans and warp
        timelines into one Perfetto/chrome://tracing file.
  tdfs stream  --graph G.txt --updates U.txt
               (--pattern P1 | --query Q.txt | --queries batch.txt)
               [--workers W] [--warps N] [--verify 1] [--out out.json | -]
        U.txt: "+ u v" inserts, "- u v" deletes, "commit" closes a
        batch ('#' comments; EOF flushes). Registers the queries as
        continuous, applies each batch, and reports per-batch JSON
        delta counts (lost/gained/new per query). --verify recounts
        from scratch after every batch and fails on any mismatch.
  tdfs stream  --graph G.txt --gen-updates U.txt [--batches B]
               [--inserts I] [--deletes D] [--seed S]
        writes a random update stream valid against G.txt.
  tdfs serve   --graph G.txt [--queries batch.txt | --pattern P1]
               [--metrics-port PORT] [--duration-ms MS] [--slow-ms MS]
               [--workers W] [--warps N] [--devices D]
        replays the workload through the match service while exposing
        live metrics at http://127.0.0.1:PORT/metrics (Prometheus text
        format; port 0 picks an ephemeral port). --slow-ms enables the
        slow-query log with per-stage latency breakdowns.
  tdfs metrics --graph G.txt [--queries batch.txt | --pattern P1]
               [--jobs N]
        one-shot: runs the workload and prints the Prometheus scrape
        page to stdout without binding a port.
  tdfs kclique --graph G.txt --k K [--warps N]
  tdfs mce     --graph G.txt [--warps N]
)";
}

Result<Graph> LoadGraphArg(const Args& args) {
  TDFS_ASSIGN_OR_RETURN(std::string path, args.Require("graph"));
  TDFS_ASSIGN_OR_RETURN(Graph g, LoadEdgeListText(path));
  const int64_t labels = args.GetInt("labels", 0);
  if (labels > 0) {
    g.AssignUniformLabels(static_cast<int32_t>(labels),
                          static_cast<uint64_t>(args.GetInt("seed", 1)));
  }
  return g;
}

int ReportAndExit(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

int CmdGenerate(const Args& args) {
  auto type = args.Require("type");
  auto out = args.Require("out");
  if (!type.ok()) {
    return ReportAndExit(type.status());
  }
  if (!out.ok()) {
    return ReportAndExit(out.status());
  }
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const int64_t n = args.GetInt("vertices", 10000);
  Graph g;
  const std::string kind = type.value();
  if (kind == "er") {
    g = GenerateErdosRenyi(n, args.GetInt("edges", 4 * n), seed);
  } else if (kind == "ba") {
    g = GenerateBarabasiAlbert(
        n, static_cast<int32_t>(args.GetInt("attach", 4)), seed);
  } else if (kind == "hubba") {
    g = GenerateHubbedPowerLaw(
        n, static_cast<int32_t>(args.GetInt("attach", 4)),
        static_cast<int32_t>(args.GetInt("hubs", 3)),
        args.GetInt("hub-degree", n / 10), seed);
  } else if (kind == "rmat") {
    g = GenerateRmat(n, args.GetInt("edges", 4 * n),
                     args.GetDouble("a", 0.57), args.GetDouble("b", 0.19),
                     args.GetDouble("c", 0.19), seed);
  } else if (kind == "pp") {
    g = GeneratePlantedPartition(
        n, static_cast<int32_t>(args.GetInt("communities", 50)),
        args.GetDouble("p-in", 0.3), args.GetDouble("p-out", 0.001), seed);
  } else {
    return ReportAndExit(
        Status::InvalidArgument("unknown --type '" + kind + "'"));
  }
  Status s = SaveEdgeListText(g, out.value());
  if (!s.ok()) {
    return ReportAndExit(s);
  }
  std::cout << "wrote " << out.value() << ": " << g.Summary() << "\n";
  return 0;
}

int CmdDataset(const Args& args) {
  auto name = args.Require("name");
  auto out = args.Require("out");
  if (!name.ok()) {
    return ReportAndExit(name.status());
  }
  if (!out.ok()) {
    return ReportAndExit(out.status());
  }
  auto id = DatasetFromName(name.value());
  if (!id.ok()) {
    return ReportAndExit(id.status());
  }
  Graph g = LoadDataset(id.value());
  Status s = SaveEdgeListText(g, out.value());
  if (!s.ok()) {
    return ReportAndExit(s);
  }
  std::cout << "wrote " << out.value() << ": " << g.Summary() << "\n";
  if (g.IsLabeled()) {
    std::cout << "note: labels are not stored in edge-list files; reload "
                 "with --labels " << g.NumLabels() << " --seed ...\n";
  }
  return 0;
}

int CmdStats(const Args& args) {
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) {
    return ReportAndExit(graph.status());
  }
  std::cout << graph.value().Summary() << "\n";
  return 0;
}

EngineConfig ConfigFromArgs(const Args& args, EngineConfig config) {
  config.num_warps = static_cast<int>(args.GetInt("warps", config.num_warps));
  config.num_devices =
      static_cast<int>(args.GetInt("devices", config.num_devices));
  config.timeout_ms = args.GetDouble("tau", config.timeout_ms);
  if (args.Has("tau-units")) {
    // Deterministic timeouts: tau in virtual work units instead of wall
    // milliseconds (what the bench harness uses; see bench/harness.h).
    config.clock = ClockKind::kVirtual;
    config.timeout_work_units =
        static_cast<uint64_t>(args.GetInt("tau-units", 0));
  }
  config.max_run_ms = args.GetDouble("budget-ms", config.max_run_ms);
  config.induced = args.GetInt("induced", 0) != 0;
  config.use_reuse = args.GetInt("reuse", config.use_reuse ? 1 : 0) != 0;
  config.use_symmetry_breaking =
      args.GetInt("symmetry", config.use_symmetry_breaking ? 1 : 0) != 0;
  config.use_degree_filter =
      args.GetInt("degree-filter", config.use_degree_filter ? 1 : 0) != 0;
  const std::string stack = args.GetOr("stack", "");
  if (stack == "array") {
    config.stack = StackKind::kArrayMaxDegree;
  } else if (stack == "paged") {
    config.stack = StackKind::kPaged;
  }
  if (args.Has("intersect")) {
    const std::string mode = args.GetOr("intersect", "");
    if (!ParseIntersectMode(mode, &config.intersect)) {
      std::cerr << "warning: unknown --intersect '" << mode
                << "' (want auto|scalar|simd|bitmap-off); keeping "
                << IntersectModeName(config.intersect) << "\n";
    }
  }
  if (args.Has("planner")) {
    const std::string planner = args.GetOr("planner", "");
    if (!ParsePlannerKind(planner, &config.planner)) {
      std::cerr << "warning: unknown --planner '" << planner
                << "' (want greedy|cost); keeping "
                << PlannerKindName(config.planner) << "\n";
    }
  }
  if (args.Has("prefilter")) {
    const std::string prefilter = args.GetOr("prefilter", "");
    if (!ParsePrefilterKind(prefilter, &config.prefilter)) {
      std::cerr << "warning: unknown --prefilter '" << prefilter
                << "' (want off|ldf|neighborhood); keeping "
                << PrefilterKindName(config.prefilter) << "\n";
    }
  }
  config.bitmap_min_degree =
      args.GetInt("bitmap-min-degree", config.bitmap_min_degree);
  config.page_pool_pages = static_cast<int32_t>(
      args.GetInt("pages", config.page_pool_pages));
  if (args.Has("spill")) {
    const std::string spill = args.GetOr("spill", "");
    if (spill == "on" || spill == "1") {
      config.spill_to_host = true;
    } else if (spill == "off" || spill == "0") {
      config.spill_to_host = false;
    } else {
      std::cerr << "warning: unknown --spill '" << spill
                << "' (want on|off); keeping "
                << (config.spill_to_host ? "on" : "off") << "\n";
    }
  }
  config.max_spill_pages = static_cast<int32_t>(
      args.GetInt("max-spill-pages", config.max_spill_pages));
  if (args.Has("sharding")) {
    const std::string sharding = args.GetOr("sharding", "");
    if (!ParseShardingKind(sharding, &config.sharding)) {
      std::cerr << "warning: unknown --sharding '" << sharding
                << "' (want off|hash|greedy); keeping "
                << ShardingKindName(config.sharding) << "\n";
    }
  }
  config.num_shards =
      static_cast<int>(args.GetInt("num-shards", config.num_shards));
  config.shard_halo_max_degree =
      args.GetInt("halo-degree", config.shard_halo_max_degree);
  if (args.Has("numa")) {
    // Comma-separated NUMA node hints; shard s gets numa[s % size].
    config.numa_nodes.clear();
    std::stringstream nodes(args.GetOr("numa", ""));
    std::string node;
    while (std::getline(nodes, node, ',')) {
      if (!node.empty()) {
        config.numa_nodes.push_back(std::atoi(node.c_str()));
      }
    }
  }
  if (args.Has("graph-budget")) {
    auto budget = ParseByteSize(args.GetOr("graph-budget", ""));
    if (budget.ok()) {
      config.graph_budget_bytes = budget.value();
    } else {
      std::cerr << "warning: --graph-budget: " << budget.status() << "\n";
    }
  }
  if (args.Has("mem-budget")) {
    auto budget = ParseByteSize(args.GetOr("mem-budget", ""));
    if (budget.ok()) {
      // The process-global governor: every allocator registers with it,
      // and admission/pressure engage once it has a budget.
      MemoryGovernor::Global()->SetBudgetBytes(budget.value());
    } else {
      std::cerr << "warning: --mem-budget: " << budget.status() << "\n";
    }
  }
  return config;
}

int CmdMatch(const Args& args) {
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) {
    return ReportAndExit(graph.status());
  }
  Result<QueryGraph> query = Status::InvalidArgument(
      "provide exactly one of --pattern or --query");
  if (args.Has("pattern")) {
    auto index = PatternFromName(args.GetOr("pattern", ""));
    if (!index.ok()) {
      return ReportAndExit(index.status());
    }
    query = Pattern(index.value());
  } else if (args.Has("query")) {
    query = LoadQueryFile(args.GetOr("query", ""));
  }
  if (!query.ok()) {
    return ReportAndExit(query.status());
  }

  // Any export flag enables the trace session: --trace-out needs the
  // event rings, --json benefits from the histogram metrics it carries,
  // and --flame-out needs the per-cell time attribution the engine only
  // collects while tracing.
  std::unique_ptr<obs::TraceSession> trace;
  if (args.Has("trace-out") || args.Has("json") || args.Has("flame-out")) {
    trace = std::make_unique<obs::TraceSession>();
  }
  auto with_trace = [&trace](EngineConfig config) {
    config.trace = trace.get();
    return config;
  };

  const std::string engine = args.GetOr("engine", "tdfs");
  RunResult result;
  if (engine == "tdfs") {
    result = RunMatching(graph.value(), query.value(),
                         with_trace(ConfigFromArgs(args, TdfsConfig())));
  } else if (engine == "stmatch") {
    result = RunMatching(graph.value(), query.value(),
                         with_trace(ConfigFromArgs(args, StmatchConfig())));
  } else if (engine == "egsm") {
    result = RunMatching(graph.value(), query.value(),
                         with_trace(ConfigFromArgs(args, EgsmConfig())));
  } else if (engine == "pbe") {
    result = RunMatchingBfs(graph.value(), query.value(),
                            with_trace(ConfigFromArgs(args, PbeConfig())));
  } else if (engine == "hybrid") {
    result =
        RunMatchingHybrid(graph.value(), query.value(),
                          with_trace(ConfigFromArgs(args, TdfsConfig())));
  } else if (engine == "ref") {
    result = RunMatchingRef(graph.value(), query.value(),
                            with_trace(ConfigFromArgs(args, TdfsConfig())));
  } else {
    return ReportAndExit(
        Status::InvalidArgument("unknown --engine '" + engine + "'"));
  }

  // Exports run even for failed jobs: a machine-readable failure (status
  // object, partial counters) is exactly what a harness wants to see.
  if (args.Has("json")) {
    const std::string path = args.GetOr("json", "");
    const std::string doc =
        result.ToJsonString(trace == nullptr ? nullptr : trace->metrics());
    if (path == "-") {
      std::cout << doc;
    } else {
      std::ofstream out(path);
      out << doc;
      if (!out) {
        return ReportAndExit(Status::IOError("cannot write " + path));
      }
      std::cout << "json:         " << path << "\n";
    }
  }
  if (args.Has("trace-out")) {
    const std::string path = args.GetOr("trace-out", "");
    Status s = trace->WriteChromeTraceFile(path);
    if (!s.ok()) {
      return ReportAndExit(s);
    }
    std::cout << "trace:        " << path << " (" << trace->NumTracks()
              << " tracks, " << trace->TotalDropped()
              << " dropped records)\n";
  }
  if (args.Has("flame-out")) {
    // Collapsed-stack per-cell/per-arm wall-time attribution, ready for
    // a flamegraph renderer (one "tdfs;cellN[;arm] <ns>" line each).
    const std::string path = args.GetOr("flame-out", "");
    if (result.attribution.Empty()) {
      std::cerr << "warning: no time attribution collected (run too "
                   "short?); writing empty " << path << "\n";
    }
    if (path == "-") {
      result.attribution.WriteCollapsed(std::cout);
    } else {
      std::ofstream out(path);
      result.attribution.WriteCollapsed(out);
      if (!out) {
        return ReportAndExit(Status::IOError("cannot write " + path));
      }
      std::cout << "flame:        " << path << "\n";
    }
  }
  if (!result.status.ok()) {
    return ReportAndExit(result.status);
  }
  std::cout << "matches:      " << result.match_count << "\n"
            << "wall ms:      " << result.match_ms << "\n"
            << "simulated ms: " << result.SimulatedGpuMs() << "\n"
            << "work units:   " << result.counters.work_units << "\n";
  if (result.counters.tasks_enqueued > 0) {
    std::cout << "queue tasks:  " << result.counters.tasks_enqueued
              << " (peak " << result.counters.queue_peak_tasks << ")\n";
  }
  return 0;
}

// One line of a --queries file: a pattern name or a query-file path.
Result<QueryGraph> LoadBatchQuery(const std::string& spec) {
  auto index = PatternFromName(spec);
  if (index.ok()) {
    return Pattern(index.value());
  }
  return LoadQueryFile(spec);
}

struct QueryList {
  std::vector<std::string> specs;
  std::vector<QueryGraph> queries;
};

// Loads a --queries file: one pattern name or query-file path per line,
// '#' comments.
Result<QueryList> LoadQueriesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot read " + path);
  }
  QueryList list;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      continue;
    }
    const size_t end = line.find_last_not_of(" \t\r");
    const std::string spec = line.substr(begin, end - begin + 1);
    auto query = LoadBatchQuery(spec);
    if (!query.ok()) {
      return Status::InvalidArgument("query '" + spec +
                                     "': " + query.status().ToString());
    }
    list.specs.push_back(spec);
    list.queries.push_back(std::move(query.value()));
  }
  if (list.queries.empty()) {
    return Status::InvalidArgument("no queries in " + path);
  }
  return list;
}

int CmdBatch(const Args& args) {
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) {
    return ReportAndExit(graph.status());
  }
  auto queries_path = args.Require("queries");
  if (!queries_path.ok()) {
    return ReportAndExit(queries_path.status());
  }
  auto loaded = LoadQueriesFile(queries_path.value());
  if (!loaded.ok()) {
    return ReportAndExit(loaded.status());
  }
  std::vector<std::string>& specs = loaded.value().specs;
  std::vector<QueryGraph>& queries = loaded.value().queries;

  EngineConfig config;
  const std::string engine = args.GetOr("engine", "tdfs");
  if (engine == "tdfs") {
    config = ConfigFromArgs(args, TdfsConfig());
  } else if (engine == "stmatch") {
    config = ConfigFromArgs(args, StmatchConfig());
  } else if (engine == "egsm") {
    config = ConfigFromArgs(args, EgsmConfig());
  } else {
    return ReportAndExit(Status::InvalidArgument(
        "unknown --engine '" + engine + "' (batch runs DFS engines)"));
  }
  config.retry.max_attempts =
      static_cast<int>(args.GetInt("retries", config.retry.max_attempts));

  // One session for the whole batch: every job's service spans and warp
  // tracks land on a single merged timeline.
  std::unique_ptr<obs::TraceSession> trace;
  if (args.Has("trace-out")) {
    trace = std::make_unique<obs::TraceSession>();
    config.trace = trace.get();
  }

  ServiceOptions service_options;
  service_options.num_workers =
      static_cast<int>(args.GetInt("workers", service_options.num_workers));
  service_options.max_pending_jobs = static_cast<int>(
      args.GetInt("max-pending", service_options.max_pending_jobs));
  service_options.plan_cache_capacity =
      args.GetInt("cache-capacity", service_options.plan_cache_capacity);
  service_options.default_deadline_ms = args.GetDouble("deadline-ms", 0.0);

  Timer wall;
  MatchService service(graph.value(), config, service_options);
  std::vector<std::future<RunResult>> futures;
  futures.reserve(queries.size());
  for (const QueryGraph& query : queries) {
    futures.push_back(service.Submit(query));
  }
  std::vector<RunResult> results;
  results.reserve(futures.size());
  int64_t ok_jobs = 0;
  uint64_t total_matches = 0;
  for (auto& future : futures) {
    results.push_back(future.get());
    if (results.back().status.ok()) {
      ++ok_jobs;
      total_matches += results.back().match_count;
    }
  }
  const double wall_ms = wall.ElapsedMillis();
  const MatchService::Stats stats = service.GetStats();

  if (trace != nullptr) {
    const std::string path = args.GetOr("trace-out", "");
    Status s = trace->WriteChromeTraceFile(path);
    if (!s.ok()) {
      return ReportAndExit(s);
    }
    std::cout << "trace:        " << path << " (" << trace->NumTracks()
              << " tracks, " << trace->TotalDropped() << " dropped, "
              << trace->spans()->Size() << " spans)\n";
  }

  // JSON array of per-job objects, in input order.
  if (args.Has("out")) {
    const std::string path = args.GetOr("out", "");
    std::ostringstream doc;
    obs::JsonWriter w(doc);
    w.BeginArray();
    for (size_t i = 0; i < results.size(); ++i) {
      w.BeginObject();
      w.KeyValue("query", specs[i]);
      w.Key("result");
      results[i].ToJson(&w);
      w.EndObject();
    }
    w.EndArray();
    if (path == "-") {
      std::cout << doc.str() << "\n";
    } else {
      std::ofstream out(path);
      out << doc.str() << "\n";
      if (!out) {
        return ReportAndExit(Status::IOError("cannot write " + path));
      }
      std::cout << "json:         " << path << "\n";
    }
  }

  std::cout << "jobs:         " << results.size() << " (" << ok_jobs
            << " ok)\n"
            << "matches:      " << total_matches << "\n"
            << "wall ms:      " << wall_ms << "\n"
            << "jobs/s:       "
            << (wall_ms > 0 ? 1000.0 * static_cast<double>(results.size()) /
                                  wall_ms
                            : 0.0)
            << "\n"
            << "plan cache:   " << stats.plan_cache_hits << " hits / "
            << stats.plan_cache_misses << " misses\n"
            << "arena leases: " << stats.arena_acquires << "\n";
  const int failed = static_cast<int>(results.size()) - ok_jobs;
  return failed == 0 ? 0 : 1;
}

// ---- tdfs serve / tdfs metrics: Prometheus scrape endpoint ----

// Resolves the query workload for serve/metrics: --queries file,
// --pattern / --query, or the P1 default.
Result<QueryList> ServeQueries(const Args& args) {
  if (args.Has("queries")) {
    return LoadQueriesFile(args.GetOr("queries", ""));
  }
  QueryList list;
  if (args.Has("query")) {
    TDFS_ASSIGN_OR_RETURN(QueryGraph q,
                          LoadQueryFile(args.GetOr("query", "")));
    list.specs.push_back(args.GetOr("query", ""));
    list.queries.push_back(std::move(q));
    return list;
  }
  const std::string name = args.GetOr("pattern", "P1");
  TDFS_ASSIGN_OR_RETURN(int index, PatternFromName(name));
  list.specs.push_back(name);
  list.queries.push_back(Pattern(index));
  return list;
}

int CmdServe(const Args& args) {
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) {
    return ReportAndExit(graph.status());
  }
  auto queries = ServeQueries(args);
  if (!queries.ok()) {
    return ReportAndExit(queries.status());
  }
  EngineConfig config = ConfigFromArgs(args, TdfsConfig());
  ServiceOptions options;
  options.num_workers =
      static_cast<int>(args.GetInt("workers", options.num_workers));
  options.slow_query_ms = args.GetDouble("slow-ms", options.slow_query_ms);
  const int port = static_cast<int>(args.GetInt("metrics-port", 0));
  const double duration_ms = args.GetDouble("duration-ms", 10000.0);

  MatchService service(graph.value(), config, options);
  Status status = service.StartMetricsServer(port);
  if (!status.ok()) {
    return ReportAndExit(status);
  }
  std::cout << "metrics:      http://127.0.0.1:" << service.metrics_port()
            << "/metrics (" << duration_ms << " ms)\n";

  // Replay the workload round-robin, keeping a small pipeline in flight,
  // so scrapes observe a live service rather than an idle one.
  const size_t num_queries = queries.value().queries.size();
  Timer wall;
  std::deque<std::future<RunResult>> inflight;
  size_t next = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  const auto drain_one = [&] {
    RunResult r = inflight.front().get();
    inflight.pop_front();
    ++completed;
    if (!r.status.ok()) {
      ++failed;
    }
  };
  while (wall.ElapsedMillis() < duration_ms) {
    while (inflight.size() < 8) {
      inflight.push_back(
          service.Submit(queries.value().queries[next % num_queries]));
      ++next;
    }
    drain_one();
  }
  while (!inflight.empty()) {
    drain_one();
  }
  service.StopMetricsServer();

  const MatchService::Stats stats = service.GetStats();
  std::cout << "jobs:         " << completed << " (" << failed
            << " failed)\n"
            << "jobs/s:       "
            << (wall.ElapsedMillis() > 0
                    ? 1000.0 * static_cast<double>(completed) /
                          wall.ElapsedMillis()
                    : 0.0)
            << "\n";
  for (const MatchService::Stats::StageStats& stage : stats.stages) {
    std::cout << "stage " << stage.stage << ": n=" << stage.count
              << " p50=" << stage.p50_us << "us p95=" << stage.p95_us
              << "us p99=" << stage.p99_us << "us max=" << stage.max_us
              << "us\n";
  }
  return failed == 0 ? 0 : 1;
}

int CmdMetrics(const Args& args) {
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) {
    return ReportAndExit(graph.status());
  }
  auto queries = ServeQueries(args);
  if (!queries.ok()) {
    return ReportAndExit(queries.status());
  }
  EngineConfig config = ConfigFromArgs(args, TdfsConfig());
  obs::MetricsRegistry registry;
  int failed = 0;
  {
    MatchService service(graph.value(), config, ServiceOptions{});
    service.AttachMetrics(&registry);
    const int64_t jobs = std::max<int64_t>(args.GetInt("jobs", 1), 1);
    std::vector<std::future<RunResult>> futures;
    for (int64_t i = 0; i < jobs; ++i) {
      for (const QueryGraph& query : queries.value().queries) {
        futures.push_back(service.Submit(query));
      }
    }
    for (auto& future : futures) {
      if (!future.get().status.ok()) {
        ++failed;
      }
    }
  }
  // One-shot scrape page on stdout: exactly what GET /metrics would
  // serve, without binding a port.
  std::cout << obs::RenderPrometheusText(registry);
  return failed == 0 ? 0 : 1;
}

// ---- tdfs stream: batch-dynamic updates with continuous queries ----

// Updates file: one op per line — "+ u v" inserts, "- u v" deletes,
// "commit" closes the batch; '#' starts a comment; EOF flushes any
// pending ops as a final batch.
Result<std::vector<dyn::GraphDelta>> LoadUpdates(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot read " + path);
  }
  std::vector<dyn::GraphDelta> batches;
  std::vector<dyn::EdgePair> inserts;
  std::vector<dyn::EdgePair> deletes;
  const auto flush = [&]() -> Status {
    if (inserts.empty() && deletes.empty()) {
      return Status::OK();
    }
    auto delta = dyn::GraphDelta::Build(std::move(inserts),
                                        std::move(deletes));
    if (!delta.ok()) {
      return delta.status();
    }
    batches.push_back(std::move(delta.value()));
    inserts.clear();
    deletes.clear();
    return Status::OK();
  };
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op)) {
      continue;
    }
    if (op == "commit") {
      if (Status s = flush(); !s.ok()) {
        return s;
      }
      continue;
    }
    VertexId u, v;
    if ((op != "+" && op != "-") || !(tokens >> u >> v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected '+ u v', '- u v', or "
                                     "'commit', got '" +
                                     line + "'");
    }
    (op == "+" ? inserts : deletes).emplace_back(u, v);
  }
  if (Status s = flush(); !s.ok()) {
    return s;
  }
  return batches;
}

// Writes a random updates file guaranteed valid against `graph` when the
// batches are applied in order.
Status GenerateUpdates(const Graph& graph, const std::string& path,
                       int batches, int inserts, int deletes,
                       uint64_t seed) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot write " + path);
  }
  out << "# generated update stream: " << batches << " batches, +"
      << inserts << " -" << deletes << " edges per batch, seed " << seed
      << "\n";
  Xoshiro256ss rng(seed);
  dyn::DynamicGraph dynamic(graph);
  for (int b = 0; b < batches; ++b) {
    const std::shared_ptr<const Graph> g = dynamic.Snapshot();
    std::vector<dyn::EdgePair> ins;
    std::vector<dyn::EdgePair> del;
    std::set<dyn::EdgePair> used;
    int attempts = 0;
    while (static_cast<int>(del.size()) < deletes &&
           ++attempts < 100000 && g->NumDirectedEdges() > 0) {
      const int64_t e = rng.Range(0, g->NumDirectedEdges() - 1);
      VertexId u = g->EdgeSource(e);
      VertexId v = g->EdgeTarget(e);
      if (u > v) {
        std::swap(u, v);
      }
      if (used.insert({u, v}).second) {
        del.emplace_back(u, v);
      }
    }
    attempts = 0;
    while (static_cast<int>(ins.size()) < inserts && ++attempts < 100000) {
      VertexId u = static_cast<VertexId>(rng.Range(0, g->NumVertices() - 1));
      VertexId v = static_cast<VertexId>(rng.Range(0, g->NumVertices() - 1));
      if (u == v) {
        continue;
      }
      if (u > v) {
        std::swap(u, v);
      }
      if (g->HasEdge(u, v) || !used.insert({u, v}).second) {
        continue;
      }
      ins.emplace_back(u, v);
    }
    auto delta = dyn::GraphDelta::Build(ins, del);
    if (!delta.ok()) {
      return delta.status();
    }
    for (const dyn::EdgePair& e : delta.value().insertions()) {
      out << "+ " << e.first << " " << e.second << "\n";
    }
    for (const dyn::EdgePair& e : delta.value().deletions()) {
      out << "- " << e.first << " " << e.second << "\n";
    }
    out << "commit\n";
    if (!dynamic.Apply(delta.value()).ok()) {
      return Status::Internal("generated batch failed to apply");
    }
  }
  if (!out) {
    return Status::IOError("cannot write " + path);
  }
  std::cout << "updates:      " << path << " (" << batches
            << " batches)\n";
  return Status::OK();
}

int CmdStream(const Args& args) {
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) {
    return ReportAndExit(graph.status());
  }

  if (args.Has("gen-updates")) {
    Status s = GenerateUpdates(
        graph.value(), args.GetOr("gen-updates", ""),
        static_cast<int>(args.GetInt("batches", 10)),
        static_cast<int>(args.GetInt("inserts", 8)),
        static_cast<int>(args.GetInt("deletes", 4)),
        static_cast<uint64_t>(args.GetInt("seed", 1)));
    return s.ok() ? 0 : ReportAndExit(s);
  }

  auto updates_path = args.Require("updates");
  if (!updates_path.ok()) {
    return ReportAndExit(updates_path.status());
  }
  auto batches = LoadUpdates(updates_path.value());
  if (!batches.ok()) {
    return ReportAndExit(batches.status());
  }

  // Queries: --pattern / --query (one), or --queries (file of specs).
  std::vector<std::string> specs;
  if (args.Has("pattern") || args.Has("query")) {
    specs.push_back(args.GetOr("pattern", args.GetOr("query", "")));
  } else if (args.Has("queries")) {
    std::ifstream in(args.GetOr("queries", ""));
    if (!in) {
      return ReportAndExit(
          Status::IOError("cannot read " + args.GetOr("queries", "")));
    }
    std::string line;
    while (std::getline(in, line)) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line = line.substr(0, hash);
      }
      std::istringstream tokens(line);
      std::string spec;
      if (tokens >> spec) {
        specs.push_back(spec);
      }
    }
  }
  if (specs.empty()) {
    return ReportAndExit(Status::InvalidArgument(
        "stream needs --pattern, --query, or --queries"));
  }

  EngineConfig config = ConfigFromArgs(args, TdfsConfig());
  ServiceOptions service_options;
  service_options.num_workers =
      static_cast<int>(args.GetInt("workers", service_options.num_workers));

  MatchService service(graph.value(), config, service_options);
  std::vector<int64_t> ids;
  for (const std::string& spec : specs) {
    auto query = LoadBatchQuery(spec);
    if (!query.ok()) {
      return ReportAndExit(Status::InvalidArgument(
          "query '" + spec + "': " + query.status().ToString()));
    }
    auto id = service.RegisterContinuousQuery(query.value());
    if (!id.ok()) {
      return ReportAndExit(id.status());
    }
    ids.push_back(id.value());
    auto count = service.ContinuousQueryCount(id.value());
    std::cout << "register:     " << spec << " = "
              << (count.ok() ? std::to_string(count.value()) : "?")
              << " matches\n";
  }

  const bool verify = args.GetInt("verify", 0) != 0;
  std::ostringstream doc;
  obs::JsonWriter json(doc);
  json.BeginArray();
  Timer wall;
  int failed = 0;
  for (size_t b = 0; b < batches.value().size(); ++b) {
    const dyn::GraphDelta& delta = batches.value()[b];
    auto report = service.ApplyUpdate(delta);
    if (!report.ok()) {
      std::cerr << "batch " << b << ": " << report.status() << "\n";
      ++failed;
      continue;
    }
    json.BeginObject();
    json.KeyValue("version", report.value().version);
    json.KeyValue("inserted", report.value().edges_inserted);
    json.KeyValue("deleted", report.value().edges_deleted);
    json.KeyValue("delta_plans_run", report.value().delta_plans_run);
    json.KeyValue("seed_edges", report.value().seed_edges);
    json.KeyValue("total_ms", report.value().total_ms);
    json.Key("queries");
    json.BeginArray();
    for (size_t i = 0; i < report.value().queries.size(); ++i) {
      const MatchService::QueryDelta& qd = report.value().queries[i];
      json.BeginObject();
      json.KeyValue("query", specs[i]);
      json.KeyValue("old_count", qd.old_count);
      json.KeyValue("lost", qd.lost);
      json.KeyValue("gained", qd.gained);
      json.KeyValue("new_count", qd.new_count);
      if (qd.recounted) {
        json.KeyValue("recounted", true);
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();

    std::cout << "batch " << report.value().version << ":      "
              << delta.Summary();
    for (size_t i = 0; i < report.value().queries.size(); ++i) {
      const MatchService::QueryDelta& qd = report.value().queries[i];
      std::cout << "  " << specs[i] << ": " << qd.old_count << " -"
                << qd.lost << " +" << qd.gained << " = " << qd.new_count;
    }
    std::cout << " (" << report.value().total_ms << " ms)\n";

    if (verify) {
      for (size_t i = 0; i < ids.size(); ++i) {
        auto query = LoadBatchQuery(specs[i]);
        const RunResult full =
            RunMatching(*service.Snapshot(), query.value(), config);
        auto maintained = service.ContinuousQueryCount(ids[i]);
        if (!full.status.ok() || !maintained.ok() ||
            full.match_count != maintained.value()) {
          std::cerr << "VERIFY FAILED batch " << b << " query " << specs[i]
                    << ": incremental "
                    << (maintained.ok()
                            ? std::to_string(maintained.value())
                            : "?")
                    << " vs recount "
                    << (full.status.ok() ? std::to_string(full.match_count)
                                         : full.status.ToString())
                    << "\n";
          ++failed;
        }
      }
    }
  }
  json.EndArray();
  const double wall_ms = wall.ElapsedMillis();

  if (args.Has("out")) {
    const std::string path = args.GetOr("out", "");
    if (path == "-") {
      std::cout << doc.str() << "\n";
    } else {
      std::ofstream out(path);
      out << doc.str() << "\n";
      if (!out) {
        return ReportAndExit(Status::IOError("cannot write " + path));
      }
      std::cout << "json:         " << path << "\n";
    }
  }
  std::cout << "batches:      " << batches.value().size() << " ("
            << (batches.value().size() - failed) << " ok)\n"
            << "final ver:    " << service.GraphVersion() << "\n"
            << "wall ms:      " << wall_ms << "\n";
  if (verify && failed == 0) {
    std::cout << "verify:       all batches match full recounts\n";
  }
  return failed == 0 ? 0 : 1;
}

int CmdKClique(const Args& args) {
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) {
    return ReportAndExit(graph.status());
  }
  const int k = static_cast<int>(args.GetInt("k", 3));
  RunResult result = CountKCliques(graph.value(), k,
                                   ConfigFromArgs(args, TdfsConfig()));
  if (!result.status.ok()) {
    return ReportAndExit(result.status);
  }
  std::cout << k << "-cliques: " << result.match_count << " ("
            << result.match_ms << " ms)\n";
  return 0;
}

int CmdMce(const Args& args) {
  auto graph = LoadGraphArg(args);
  if (!graph.ok()) {
    return ReportAndExit(graph.status());
  }
  RunResult result =
      CountMaximalCliques(graph.value(), ConfigFromArgs(args, TdfsConfig()));
  if (!result.status.ok()) {
    return ReportAndExit(result.status);
  }
  std::cout << "maximal cliques: " << result.match_count << " ("
            << result.match_ms << " ms)\n";
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "help" ||
      std::string(argv[1]) == "--help") {
    PrintUsage();
    return argc < 2 ? 1 : 0;
  }
  const std::string command = argv[1];
  auto args = Args::Parse(argc, argv, 2);
  if (!args.ok()) {
    return ReportAndExit(args.status());
  }
  if (command == "generate") {
    return CmdGenerate(args.value());
  }
  if (command == "dataset") {
    return CmdDataset(args.value());
  }
  if (command == "stats") {
    return CmdStats(args.value());
  }
  if (command == "match") {
    return CmdMatch(args.value());
  }
  if (command == "batch") {
    return CmdBatch(args.value());
  }
  if (command == "serve") {
    return CmdServe(args.value());
  }
  if (command == "metrics") {
    return CmdMetrics(args.value());
  }
  if (command == "stream") {
    return CmdStream(args.value());
  }
  if (command == "kclique") {
    return CmdKClique(args.value());
  }
  if (command == "mce") {
    return CmdMce(args.value());
  }
  std::cerr << "unknown command '" << command << "'\n";
  PrintUsage();
  return 1;
}

}  // namespace
}  // namespace tdfs::cli

int main(int argc, char** argv) { return tdfs::cli::Main(argc, argv); }
