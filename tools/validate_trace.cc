// validate_trace — schema checker for the observability exports.
//
//   validate_trace --trace trace.json [--require ev1,ev2,...]
//   validate_trace --run run.json
//
// --trace validates a Chrome-trace/Perfetto timeline written by
// obs::TraceSession::WriteChromeTrace: top-level shape, per-event required
// keys, and per-(pid,tid) monotone non-decreasing timestamps (the warp
// virtual clock never runs backwards; span rows are serialized B/E
// streams). Span (ph "B"/"E") events are additionally checked for
// balance (every E matches an open B on its row, nothing left open at
// the end) and for parent-before-child ordering (a B whose args.parent
// is nonzero must follow its parent's B — skipped when the export
// reports dropped spans, since the parent may be the dropped one).
// Known value-carrying instants are range-checked: mem_pressure args in
// {0,1,2}, page_spill / spill_promote args non-negative. --require
// additionally demands that each named event ("split", "enqueue", ...)
// occurs at least once.
//
// --run validates a RunResult::ToJson document: status object, timing
// keys, and — via the same TDFS_RUN_COUNTER_FIELDS X-macro the writer
// expands — every RunCounters field, so the check can never fall behind
// the struct.
//
// Exit 0 on success (prints a one-line summary per file), 1 with a
// diagnostic on the first violation. Used by scripts/check.sh --obs.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/result.h"
#include "obs/json.h"
#include "util/status.h"

namespace tdfs {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

Result<obs::JsonValue> ParseFile(const std::string& path) {
  TDFS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  Result<obs::JsonValue> doc = obs::JsonValue::Parse(text);
  if (!doc.ok()) {
    return Status::InvalidArgument(path + ": " + doc.status().message());
  }
  return doc;
}

Status CheckTrace(const std::string& path,
                  const std::vector<std::string>& required_events) {
  TDFS_ASSIGN_OR_RETURN(obs::JsonValue doc, ParseFile(path));
  if (!doc.is_object()) {
    return Status::InvalidArgument(path + ": top level is not an object");
  }
  for (const char* key : {"displayTimeUnit", "otherData", "traceEvents"}) {
    if (!doc.Has(key)) {
      return Status::InvalidArgument(path + ": missing key '" +
                                     std::string(key) + "'");
    }
  }
  const obs::JsonValue* events = doc.Find("traceEvents");
  if (!events->is_array()) {
    return Status::InvalidArgument(path + ": traceEvents is not an array");
  }

  // Dropped spans may have taken a parent with them; relax the
  // parent-before-child check in that case (balance still holds — the
  // exporter synthesizes matching ends).
  const obs::JsonValue* other = doc.Find("otherData");
  const bool spans_dropped = other->Has("dropped_spans") &&
                             other->Find("dropped_spans")->Int() > 0;

  // (pid, tid) -> last non-metadata timestamp seen; names seen overall.
  std::map<std::pair<int64_t, int64_t>, int64_t> last_ts;
  std::map<std::pair<int64_t, int64_t>, int64_t> span_depth;
  std::set<int64_t> span_ids_begun;
  std::set<std::string> names;
  int64_t instants = 0;
  int64_t span_events = 0;
  int64_t metadata = 0;
  for (size_t i = 0; i < events->array().size(); ++i) {
    const obs::JsonValue& ev = events->array()[i];
    const std::string at = path + ": traceEvents[" + std::to_string(i) + "]";
    if (!ev.is_object()) {
      return Status::InvalidArgument(at + " is not an object");
    }
    for (const char* key : {"name", "ph", "pid"}) {
      if (!ev.Has(key)) {
        return Status::InvalidArgument(at + " missing '" +
                                       std::string(key) + "'");
      }
    }
    const std::string ph = ev.Find("ph")->str();
    if (ph == "M") {
      ++metadata;
      if (!ev.Has("args")) {
        return Status::InvalidArgument(at + " metadata missing 'args'");
      }
      continue;
    }
    if (ph != "i" && ph != "B" && ph != "E") {
      return Status::InvalidArgument(at + " unexpected ph '" + ph + "'");
    }
    const std::string name = ev.Find("name")->str();
    if (ph == "i") {
      for (const char* key : {"tid", "ts", "s"}) {
        if (!ev.Has(key)) {
          return Status::InvalidArgument(at + " instant missing '" +
                                         std::string(key) + "'");
        }
      }
      ++instants;
      names.insert(name);
      // Range checks on the value-carrying memory events: a pressure
      // level outside {ok, soft, hard} or a negative spill extent means
      // the writer and the enum drifted apart.
      if (ev.Has("args") && ev.Find("args")->Has("arg")) {
        const int64_t arg = ev.Find("args")->Find("arg")->Int();
        if (name == "mem_pressure" && (arg < 0 || arg > 2)) {
          return Status::InvalidArgument(
              at + " mem_pressure arg " + std::to_string(arg) +
              " outside {0,1,2}");
        }
        if ((name == "page_spill" || name == "spill_promote") && arg < 0) {
          return Status::InvalidArgument(at + " " + name + " arg " +
                                         std::to_string(arg) +
                                         " is negative");
        }
      }
    } else {
      for (const char* key : {"tid", "ts"}) {
        if (!ev.Has(key)) {
          return Status::InvalidArgument(at + " span event missing '" +
                                         std::string(key) + "'");
        }
      }
      ++span_events;
      names.insert(name);
      const std::pair<int64_t, int64_t> row = {ev.Find("pid")->Int(),
                                               ev.Find("tid")->Int()};
      int64_t& depth = span_depth[row];
      if (ph == "B") {
        ++depth;
        if (!ev.Has("args")) {
          return Status::InvalidArgument(at + " span begin missing 'args'");
        }
        const obs::JsonValue* args = ev.Find("args");
        for (const char* key : {"id", "parent"}) {
          if (!args->Has(key)) {
            return Status::InvalidArgument(at + " span begin missing args." +
                                           std::string(key));
          }
        }
        const int64_t id = args->Find("id")->Int();
        const int64_t parent = args->Find("parent")->Int();
        if (parent != 0 && !spans_dropped &&
            span_ids_begun.count(parent) == 0) {
          std::ostringstream oss;
          oss << at << " span " << id << " begins before its parent "
              << parent;
          return Status::InvalidArgument(oss.str());
        }
        span_ids_begun.insert(id);
      } else {
        --depth;
        if (depth < 0) {
          std::ostringstream oss;
          oss << at << " span end without a matching begin on track pid="
              << row.first << " tid=" << row.second;
          return Status::InvalidArgument(oss.str());
        }
      }
    }
    const std::pair<int64_t, int64_t> track = {ev.Find("pid")->Int(),
                                               ev.Find("tid")->Int()};
    const int64_t ts = ev.Find("ts")->Int();
    auto it = last_ts.find(track);
    if (it != last_ts.end() && ts < it->second) {
      std::ostringstream oss;
      oss << at << " timestamp " << ts << " < previous " << it->second
          << " on track pid=" << track.first << " tid=" << track.second;
      return Status::InvalidArgument(oss.str());
    }
    last_ts[track] = ts;
  }

  for (const auto& [row, depth] : span_depth) {
    if (depth != 0) {
      std::ostringstream oss;
      oss << path << ": " << depth
          << " span(s) left open on track pid=" << row.first
          << " tid=" << row.second;
      return Status::InvalidArgument(oss.str());
    }
  }

  for (const std::string& name : required_events) {
    if (names.count(name) == 0) {
      return Status::InvalidArgument(path + ": no '" + name +
                                     "' event found");
    }
  }
  std::cout << path << ": OK — " << instants << " events and "
            << span_events << " span events on " << last_ts.size()
            << " tracks (" << metadata << " metadata records, "
            << names.size() << " distinct event names)\n";
  return Status::OK();
}

Status CheckRun(const std::string& path) {
  TDFS_ASSIGN_OR_RETURN(obs::JsonValue doc, ParseFile(path));
  if (!doc.is_object()) {
    return Status::InvalidArgument(path + ": top level is not an object");
  }
  for (const char* key :
       {"status", "match_count", "total_ms", "match_ms",
        "simulated_gpu_ms", "simulated_parallel_ms", "per_device_ms",
        "counters"}) {
    if (!doc.Has(key)) {
      return Status::InvalidArgument(path + ": missing key '" +
                                     std::string(key) + "'");
    }
  }
  const obs::JsonValue* status = doc.Find("status");
  for (const char* key : {"ok", "code", "message"}) {
    if (!status->Has(key)) {
      return Status::InvalidArgument(path + ": status missing '" +
                                     std::string(key) + "'");
    }
  }
  const obs::JsonValue* counters = doc.Find("counters");
  if (!counters->is_object()) {
    return Status::InvalidArgument(path + ": counters is not an object");
  }
  int64_t listed = 0;
#define TDFS_FIELD_CHECK(name)                                          \
  if (!counters->Has(#name)) {                                          \
    return Status::InvalidArgument(path + ": counters missing '" #name  \
                                          "'");                         \
  }                                                                     \
  ++listed;
  TDFS_RUN_COUNTER_FIELDS(TDFS_FIELD_CHECK)
#undef TDFS_FIELD_CHECK
  std::cout << path << ": OK — all " << listed << " counter fields present"
            << (doc.Has("metrics") ? ", metrics attached" : "") << "\n";
  return Status::OK();
}

int Main(int argc, char** argv) {
  std::string trace_path;
  std::string run_path;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--run" && i + 1 < argc) {
      run_path = argv[++i];
    } else if (arg == "--require" && i + 1 < argc) {
      std::istringstream list(argv[++i]);
      std::string name;
      while (std::getline(list, name, ',')) {
        if (!name.empty()) {
          required.push_back(name);
        }
      }
    } else {
      std::cerr << "usage: validate_trace [--trace FILE [--require a,b]] "
                   "[--run FILE]\n";
      return 1;
    }
  }
  if (trace_path.empty() && run_path.empty()) {
    std::cerr << "validate_trace: nothing to do (--trace or --run)\n";
    return 1;
  }
  if (!trace_path.empty()) {
    Status s = CheckTrace(trace_path, required);
    if (!s.ok()) {
      std::cerr << "FAIL: " << s << "\n";
      return 1;
    }
  }
  if (!run_path.empty()) {
    Status s = CheckRun(run_path);
    if (!s.ok()) {
      std::cerr << "FAIL: " << s << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace tdfs

int main(int argc, char** argv) { return tdfs::Main(argc, argv); }
